"""The integrated vector unit baseline (O3+IV, Table III).

A small SIMD-style unit tightly coupled to the out-of-order core (loosely
Samsung M3 / SVE-class): 4-element hardware vector length, out-of-order
issue over three execution pipes shared with the core, and memory
operations decomposed through the core's load-store queue — constant-stride
and indexed accesses become one scalar request per element (Section
VII-A), which is the unit's structural weakness on long vectors.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import SystemConfig
from ..errors import SimulationError
from ..isa.instructions import ScalarBlock, VectorInstr
from ..isa.opcodes import Category
from ..isa.trace import Trace
from ..mem.mshr import MshrPool
from .result import SimResult
from .vector_base import VectorMachineBase

#: (startup latency, issue cycles per μop) for each macro class.
_PIPE_TIMING = {
    "ialu": (2.0, 0.5),    # two SIMD pipes issue ALU μops
    "imul": (5.0, 4.0),    # one iterative 4x32-bit multiplier, unpipelined
    "idiv": (16.0, 16.0),  # unpipelined iterative divider
    "xelem": (3.0, 1.0),
}


class IntegratedVectorMachine(VectorMachineBase):
    """O3+IV: 4-element VL, 3 shared exec pipes, LSQ memory decomposition."""

    #: Vector-capable LSQ port (memory μops per cycle).
    LSQ_PORTS = 1
    #: Outstanding vector misses the shared LSQ/ROB window sustains —
    #: the in-flight load slots the O3 core can dedicate to the unit.
    VECTOR_MLP = 12

    def __init__(self, config: SystemConfig, tracer=None, metrics=None,
                 attribution=None) -> None:
        if config.vector is None or config.vector.kind != "iv":
            raise SimulationError("IntegratedVectorMachine needs an 'iv' config")
        super().__init__(config, tracer=tracer, metrics=metrics,
                         attribution=attribution)
        self.metrics.reserve("lsq", "IntegratedVectorMachine")
        self.vl = config.vector.hardware_vl
        self._lsq_window = MshrPool(self.VECTOR_MLP, "iv-lsq",
                                    attribution=self.attr)

    def run(self, trace: Trace, compiled=None) -> SimResult:
        self.reset()
        tracer = self.tracer
        attr = self.attr
        compiled = self._prepare_compiled(compiled)  # installs fast mem
        if compiled is None:
            events = enumerate(trace)
            lines_for = None
        else:
            events = compiled.iter_events()
            lines_for = compiled.lines_for
        self._core_busy = 0.0
        self._core_stall = 0.0
        self._drain_node = -1
        vsu = {"busy": 0.0, "dep_stall": 0.0, "drain": 0.0}
        now = 0.0           # issue timeline of the shared pipes
        finish = 0.0
        instructions = 0
        for idx, event in events:
            if attr.enabled:
                attr.set_node(idx)
            if isinstance(event, ScalarBlock):
                now = self.run_scalar_block(
                    now, event,
                    lines_for(idx) if lines_for is not None else None)
                finish = max(finish, now)
                continue
            instr: VectorInstr = event
            instructions += 1
            done = self._vector_instr(
                instr, now,
                lines_for(idx) if lines_for is not None else None)
            if attr.enabled:
                # Issue-timeline split: the wait for source operands, then
                # the pipe occupancy of the instruction's uops.
                gap = self._dispatch_start - now
                if gap > 0:
                    attr.charge("vsu", "dep_stall", gap, node=idx)
                    vsu["dep_stall"] += gap
                occupancy = self._issue_end - self._dispatch_start
                if occupancy > 0:
                    attr.charge("vsu", "busy", occupancy, node=idx)
                    vsu["busy"] += occupancy
                attr.span(now, max(done, self._issue_end), node=idx)
                if done >= finish:
                    self._drain_node = idx
            if tracer.enabled and self._issue_end > now:
                tracer.span("VSU", instr.op, now, self._issue_end,
                            vl=instr.vl, done=done)
            now = max(now, self._issue_end)
            finish = max(finish, done)
        total = max(now, finish)
        if attr.enabled:
            # In-flight memory beyond the last issue slot: the drain tail.
            drain = total - now
            if drain > 0:
                attr.charge("vsu", "drain", drain, node=self._drain_node)
                vsu["drain"] += drain
        if tracer.enabled:
            tracer.span("Machine", f"execute:{trace.name}", 0.0, total,
                        system=self.config.name, instructions=instructions)
        result = SimResult(
            system=self.config.name, workload=trace.name,
            cycles=total, cycle_time_ns=self.config.cycle_time_ns,
            instructions=instructions, mem_stats=self.mem.level_stats(total),
        )
        if self.metrics.enabled:
            self.metrics.gauge("sim.cycles").set(result.cycles)
            self.metrics.counter("sim.instructions").inc(result.instructions)
            lsq = self._lsq_window.stats()
            self.metrics.gauge("lsq.occupancy").set(lsq["occupancy_hwm"])
            self.metrics.counter("lsq.stall_cycles").inc(lsq["stall_cycles"])
            self.mem.populate_metrics(result.cycles)
            result.metrics = self.metrics.snapshot()
        if attr.enabled:
            mem = self.mem
            expected = {
                "vsu": vsu,
                "core": {"busy": self._core_busy,
                         "mem_stall": self._core_stall},
                "dram": {"busy": mem.dram.busy_cycles},
                "mshr": {pool.name: pool.stall_cycles
                         for pool in (mem.l1d_mshrs, mem.l2_mshrs,
                                      mem.llc_mshrs, self._lsq_window)},
            }
            attr.finish(total, expected, timeline_units=("vsu", "core"))
            result.unit_cycles = {unit: dict(buckets)
                                  for unit, buckets in expected.items()}
        return result

    # -- one vector instruction ----------------------------------------------

    def _vector_instr(self, instr: VectorInstr, now: float,
                      lines=None) -> float:
        if instr.category.is_memory and instr.info.is_store:
            # The LSQ accepts stores before their data is ready; only the
            # index register gates address generation.
            start = max(now, self.reg_ready.get(instr.vidx, 0.0))
        else:
            start = max(now, self.deps_ready(instr))
        self._dispatch_start = start
        self._issue_end = start
        if instr.category is Category.CTRL:
            self._issue_end = start + 1.0
            return start + 1.0
        n_uops = max(1, math.ceil(instr.vl / self.vl))
        if instr.category.is_memory:
            done = self._memory_instr(instr, start, lines)
        else:
            startup, per_uop = self._timing_for(instr)
            self._issue_end = start + n_uops * per_uop
            done = start + startup + n_uops * per_uop
        self.set_ready(instr.dest, done)
        return done

    def _timing_for(self, instr: VectorInstr) -> tuple:
        if instr.category is Category.IMUL:
            if instr.info.macro == "div":
                return _PIPE_TIMING["idiv"]
            return _PIPE_TIMING["imul"]
        if instr.category is Category.XELEM:
            return _PIPE_TIMING["xelem"]
        return _PIPE_TIMING["ialu"]

    def _memory_instr(self, instr: VectorInstr, start: float,
                      lines=None) -> float:
        # Unit-stride ops move a 4-element (16B) chunk per μop; the LSQ
        # coalesces them, so one line request per distinct line.  Strided
        # and indexed ops become one scalar request per element.  Each
        # in-flight request holds one of the shared LSQ window's slots.
        per_element = instr.category in (Category.MEM_STRIDE, Category.MEM_INDEX)
        if lines is None:
            if per_element:
                raw = instr.mem.element_addresses() // 64 * 64
            else:
                raw = instr.mem.line_addresses()
            lines = [int(line) for line in np.asarray(raw, dtype=np.int64)]
        # Indexed accesses also extract each address from a vector register
        # (an extra scalar μop per element).
        interval = 1.0 / self.LSQ_PORTS
        if instr.category is Category.MEM_INDEX:
            interval = 2.0 / self.LSQ_PORTS
        t = start
        last_done = start
        is_store = instr.mem.is_store
        for line in lines:
            slot_at, _ = self._lsq_window.acquire(t)
            completion = self.mem.access(slot_at, line,
                                         is_store, port="l1")
            self._lsq_window.release(completion.done)
            last_done = max(last_done, completion.done)
            t = max(slot_at, completion.grant) + interval
        n_uops = instr.mem.num_accesses if per_element else max(
            1, math.ceil(instr.vl / self.vl))
        self._issue_end = start + n_uops * interval
        if self.tracer.enabled:
            self.tracer.span(
                "LSQ", f"{'st' if instr.mem.is_store else 'ld'}:{instr.op}",
                start, t, n_requests=len(lines), done=last_done)
        return last_done
