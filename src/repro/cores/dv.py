"""The decoupled vector engine baseline (O3+DV, Table III, Figure 5).

Loosely based on Tarantula: 64-element hardware vector length, in-order
issue to four execution pipes (simple integer, pipelined complex integer,
iterative complex/cross-element, memory), eight lanes per arithmetic pipe,
register chaining between dependent operations, and a detailed VMU issuing
cache-line requests on its private L2 port (one per cycle, one TLB
translation cycle folded into the request-generation interval).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import SystemConfig
from ..errors import SimulationError
from ..isa.instructions import ScalarBlock, VectorInstr
from ..isa.opcodes import Category
from ..isa.trace import Trace
from .result import SimResult
from .vector_base import VectorMachineBase

#: pipe name -> startup latency; occupancy is vl / lanes on that pipe.
PIPES = {
    "int_simple": 2.0,
    "int_complex": 4.0,
    "iterative": 6.0,
    "memory": 0.0,
}

LANES = 8

#: The pipelined complex-integer pipe carries two 32-bit multipliers.
MUL_LANES = 2

#: Iterative pipe processes this many elements per cycle (div, gathers).
ITERATIVE_RATE = 0.5


class DecoupledVectorMachine(VectorMachineBase):
    """O3+DV: long vectors, four pipes, chaining, dedicated VMU."""

    def __init__(self, config: SystemConfig, tracer=None, metrics=None,
                 attribution=None) -> None:
        if config.vector is None or config.vector.kind != "dv":
            raise SimulationError("DecoupledVectorMachine needs a 'dv' config")
        super().__init__(config, tracer=tracer, metrics=metrics,
                         attribution=attribution)
        self.vl = config.vector.hardware_vl
        self._pipe_free: Dict[str, float] = {name: 0.0 for name in PIPES}
        #: register -> (chain-ready time, fully-done time)
        self._chain: Dict[int, Tuple[float, float]] = {}

    def run(self, trace: Trace, compiled=None) -> SimResult:
        self.reset()
        self._pipe_free = {name: 0.0 for name in PIPES}
        self._chain.clear()
        tracer = self.tracer
        attr = self.attr
        compiled = self._prepare_compiled(compiled)  # installs fast mem
        if compiled is None:
            events = enumerate(trace)
            lines_for = None
        else:
            events = compiled.iter_events()
            lines_for = compiled.lines_for
        self._core_busy = 0.0
        self._core_stall = 0.0
        self._drain_node = -1
        self._pipe_cycles = {name: 0.0 for name in PIPES}
        vsu = {"busy": 0.0, "drain": 0.0}
        now = 0.0
        finish = 0.0
        instructions = 0
        for idx, event in events:
            if attr.enabled:
                attr.set_node(idx)
            if isinstance(event, ScalarBlock):
                now = self.run_scalar_block(
                    now, event,
                    lines_for(idx) if lines_for is not None else None)
                finish = max(finish, now)
                continue
            instr: VectorInstr = event
            instructions += 1
            issue_end, done = self._vector_instr(
                instr, now,
                lines_for(idx) if lines_for is not None else None)
            if attr.enabled:
                # In-order issue: each vector instruction holds the issue
                # stage for one cycle; pipe occupancy is charged inside
                # _vector_instr under the "pipe" unit.
                slot = issue_end - now
                if slot > 0:
                    attr.charge("vsu", "busy", slot, node=idx)
                    vsu["busy"] += slot
                attr.span(now, max(done, issue_end), node=idx)
                if done >= finish:
                    self._drain_node = idx
            if tracer.enabled and done > now:
                tracer.span("VSU", instr.op, now, done, vl=instr.vl)
            now = issue_end  # in-order issue
            finish = max(finish, done)
        total = max(now, finish)
        if attr.enabled:
            drain = total - now
            if drain > 0:
                attr.charge("vsu", "drain", drain, node=self._drain_node)
                vsu["drain"] += drain
        if tracer.enabled:
            tracer.span("Machine", f"execute:{trace.name}", 0.0, total,
                        system=self.config.name, instructions=instructions)
        result = SimResult(
            system=self.config.name, workload=trace.name,
            cycles=total, cycle_time_ns=self.config.cycle_time_ns,
            instructions=instructions, mem_stats=self.mem.level_stats(total),
        )
        if self.metrics.enabled:
            self.metrics.gauge("sim.cycles").set(result.cycles)
            self.metrics.counter("sim.instructions").inc(result.instructions)
            self.mem.populate_metrics(result.cycles)
            result.metrics = self.metrics.snapshot()
        if attr.enabled:
            mem = self.mem
            expected = {
                "vsu": vsu,
                "pipe": dict(self._pipe_cycles),
                "core": {"busy": self._core_busy,
                         "mem_stall": self._core_stall},
                "dram": {"busy": mem.dram.busy_cycles},
                "mshr": {pool.name: pool.stall_cycles
                         for pool in (mem.l1d_mshrs, mem.l2_mshrs,
                                      mem.llc_mshrs)},
            }
            attr.finish(total, expected, timeline_units=("vsu", "core"))
            result.unit_cycles = {unit: dict(buckets)
                                  for unit, buckets in expected.items()}
        return result

    # -- dependency helpers (chaining) ------------------------------------------

    def _source_ready(self, instr: VectorInstr, chained: bool) -> float:
        ready = 0.0
        for reg in instr.sources:
            chain_at, done_at = self._chain.get(reg, (0.0, 0.0))
            ready = max(ready, chain_at if chained else done_at)
        return ready

    def _set_times(self, reg: int, chain_at: float, done_at: float) -> None:
        if reg >= 0:
            self._chain[reg] = (chain_at, done_at)
            self.set_ready(reg, done_at)

    # -- one vector instruction -----------------------------------------------------

    def _vector_instr(self, instr: VectorInstr, now: float,
                      lines=None) -> Tuple[float, float]:
        category = instr.category
        if category is Category.CTRL:
            return now + 1.0, now + 1.0
        if category.is_memory:
            return self._memory_instr(instr, now, lines)

        pipe, startup, occupancy = self._compute_timing(instr)
        # Issue is dispatch-to-pipe-queue: one cycle, independent of
        # operand readiness (operands are awaited at the pipe, chained).
        start = max(now, self._pipe_free[pipe],
                    self._source_ready(instr, chained=True))
        self._pipe_free[pipe] = start + occupancy
        if self.attr.enabled:
            self.attr.charge("pipe", pipe, occupancy)
            self._pipe_cycles[pipe] += occupancy
        done = start + startup + occupancy
        # A chained consumer may start one startup behind this producer.
        self._set_times(instr.dest, start + startup + 1.0, done)
        return now + 1.0, done

    def _compute_timing(self, instr: VectorInstr) -> Tuple[str, float, float]:
        vl = max(1, instr.vl)
        if instr.category is Category.IMUL:
            if instr.info.macro == "div":
                return "iterative", PIPES["iterative"], vl / ITERATIVE_RATE / LANES
            return "int_complex", PIPES["int_complex"], vl / MUL_LANES
        if instr.category is Category.XELEM:
            return "iterative", PIPES["iterative"], vl / (LANES * ITERATIVE_RATE)
        return "int_simple", PIPES["int_simple"], vl / LANES

    def _memory_instr(self, instr: VectorInstr, now: float,
                      lines=None) -> Tuple[float, float]:
        per_element = instr.category in (Category.MEM_STRIDE, Category.MEM_INDEX)
        # Address generation occupies the memory pipe as soon as the index
        # register (if any) is ready; store *data* may arrive later — the
        # store queue decouples it, so later loads are not serialised
        # behind a store waiting on its producer.
        addr_start = max(now, self._pipe_free["memory"])
        if instr.vidx >= 0:
            addr_start = max(addr_start, self._chain.get(instr.vidx, (0.0, 0.0))[1])
        # Write-allocate fetches launch at address time; the store only
        # *completes* once its data has arrived from the producer.
        first_done, last_done, _ = self.stream_lines(
            addr_start, instr.mem, port="l2", per_element=per_element,
            issue_interval=1.0, lines=lines)
        if instr.info.is_store and instr.vd >= 0:
            last_done = max(last_done, self._chain.get(instr.vd, (0.0, 0.0))[1])
        if lines is not None:
            n_requests = len(lines)
        else:
            n_requests = (instr.mem.num_accesses if per_element
                          else len(instr.mem.line_addresses()))
        self._pipe_free["memory"] = addr_start + n_requests
        if self.attr.enabled:
            self.attr.charge("pipe", "memory", float(n_requests))
            self._pipe_cycles["memory"] += float(n_requests)
        if instr.info.is_load:
            # Loads chain: a consumer can start once the first line is back.
            self._set_times(instr.dest, first_done + 1.0, last_done)
        return now + 1.0, last_done
