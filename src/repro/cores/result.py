"""Simulation results and the execution-breakdown buckets of Figure 7."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional

#: Bucket order as plotted in Figure 7.
BREAKDOWN_BUCKETS = (
    "busy", "vru_stall", "ld_mem_stall", "st_mem_stall",
    "ld_dt_stall", "st_dt_stall", "vmu_stall", "empty_stall", "dep_stall",
)


@dataclass
class StallBreakdown:
    """Where the vector engine's cycles went (Figure 7).

    * ``busy`` — executing useful work;
    * ``vru_stall`` — reduction-unit structural hazard;
    * ``ld_mem_stall`` / ``st_mem_stall`` — waiting on load/store data;
    * ``ld_dt_stall`` / ``st_dt_stall`` — waiting on (de)transpose;
    * ``vmu_stall`` — memory-unit structural hazard;
    * ``empty_stall`` — no instruction available from the core;
    * ``dep_stall`` — register dependency on an in-flight instruction.
    """

    busy: float = 0.0
    vru_stall: float = 0.0
    ld_mem_stall: float = 0.0
    st_mem_stall: float = 0.0
    ld_dt_stall: float = 0.0
    st_dt_stall: float = 0.0
    vmu_stall: float = 0.0
    empty_stall: float = 0.0
    dep_stall: float = 0.0

    def total(self) -> float:
        return sum(getattr(self, bucket) for bucket in BREAKDOWN_BUCKETS)

    def as_dict(self) -> Dict[str, float]:
        return {bucket: getattr(self, bucket) for bucket in BREAKDOWN_BUCKETS}

    def add(self, bucket: str, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"negative stall time for {bucket!r}")
        setattr(self, bucket, getattr(self, bucket) + cycles)

    def normalised_to(self, reference_cycles: float) -> Dict[str, float]:
        """Buckets as fractions of a reference execution time (Figure 7
        normalises every design to EVE-1's total)."""
        if reference_cycles <= 0:
            raise ValueError("reference cycles must be positive")
        return {bucket: value / reference_cycles
                for bucket, value in self.as_dict().items()}


@dataclass
class SimResult:
    """Outcome of running one workload trace on one machine."""

    system: str
    workload: str
    cycles: float
    cycle_time_ns: float
    instructions: int = 0
    breakdown: Optional[StallBreakdown] = None
    mem_stats: Dict[str, object] = field(default_factory=dict)
    #: Figure 8: fraction of execution time the VMU spent stalled on the LLC.
    vmu_llc_stall_frac: float = 0.0
    #: Full :class:`~repro.obs.MetricsRegistry` snapshot, when the run was
    #: instrumented (``None`` otherwise — the common, uninstrumented case).
    metrics: Optional[Dict[str, object]] = None
    #: Machine-reported per-unit busy+stall totals (``unit -> bucket ->
    #: cycles``), populated only on attribution-instrumented runs — the
    #: reference side of the cycle-attribution conservation invariant
    #: (see :mod:`repro.obs.attribution`).
    unit_cycles: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def time_ns(self) -> float:
        """Wall-clock time — the cross-system comparable metric (EVE-16/32
        pay their cycle-time penalty here)."""
        return self.cycles * self.cycle_time_ns

    def speedup_over(self, other: "SimResult") -> float:
        return other.time_ns / self.time_ns

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serialisable view: scalar fields, the stall breakdown, the
        memory-system stats, and (if instrumented) the metrics snapshot."""
        out: Dict[str, object] = {
            "system": self.system,
            "workload": self.workload,
            "cycles": self.cycles,
            "cycle_time_ns": self.cycle_time_ns,
            "time_ns": self.time_ns,
            "instructions": self.instructions,
            "vmu_llc_stall_frac": self.vmu_llc_stall_frac,
        }
        if self.breakdown is not None:
            out["breakdown"] = self.breakdown.as_dict()
        if self.mem_stats:
            out["mem_stats"] = {key: (list(value) if isinstance(value, tuple)
                                      else value)
                                for key, value in self.mem_stats.items()}
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.unit_cycles is not None:
            out["unit_cycles"] = {unit: dict(buckets)
                                  for unit, buckets
                                  in sorted(self.unit_cycles.items())}
        return out


def merge_fields(result: SimResult) -> Dict[str, object]:
    """Flatten a result into a row for table/CSV reporting."""
    row: Dict[str, object] = {
        "system": result.system,
        "workload": result.workload,
        "cycles": result.cycles,
        "time_ns": result.time_ns,
        "instructions": result.instructions,
    }
    if result.breakdown is not None:
        row.update(result.breakdown.as_dict())
    for f in fields(result):
        if f.name == "mem_stats":
            row.update({f"mem_{k}": v for k, v in result.mem_stats.items()})
    return row
