"""Baseline machine models: scalar IO/O3 cores and the IV/DV vector units.

* :mod:`repro.cores.result` — simulation results and the Figure 7 stall
  breakdown.
* :mod:`repro.cores.scalar` — trace-driven in-order and out-of-order
  scalar cores.
* :mod:`repro.cores.iv` — the integrated vector unit (O3+IV).
* :mod:`repro.cores.dv` — the decoupled vector engine (O3+DV).

The EVE engine itself lives in :mod:`repro.core` (it is the paper's
contribution, not a baseline).
"""

from .result import SimResult, StallBreakdown
from .scalar import ScalarCore
from .iv import IntegratedVectorMachine
from .dv import DecoupledVectorMachine

__all__ = [
    "SimResult",
    "StallBreakdown",
    "ScalarCore",
    "IntegratedVectorMachine",
    "DecoupledVectorMachine",
]
