"""Miss-status-holding-register pools modelled as token heaps.

An MSHR is held from the moment a miss is accepted until its fill
completes.  When every entry is busy, the next request must wait for the
earliest release — that wait is the "cache-induced stall" of Figure 8 and
the mechanism behind the limited-MSHR effect of Section VII-B.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from ..errors import MemoryModelError
from ..obs.attribution import NULL_ATTRIBUTION


class MshrPool:
    """A pool of ``size`` miss-status registers."""

    def __init__(self, size: int, name: str = "mshr",
                 attribution=None) -> None:
        if size <= 0:
            raise MemoryModelError(f"{name}: pool size must be positive")
        self.size = size
        self.name = name
        self.attr = attribution if attribution is not None else NULL_ATTRIBUTION
        self._busy: List[float] = []  # heap of release times
        self.acquires = 0
        self.stall_cycles = 0.0
        self.stalled_acquires = 0
        #: Peak simultaneously-held entries (the Figure 8 occupancy limit).
        self.occupancy_hwm = 0

    def acquire(self, now: float) -> Tuple[float, float]:
        """Reserve an entry at or after ``now``.

        Returns ``(grant_time, stall)`` where ``stall`` is how long the
        requester had to wait for a free entry.  The entry must be released
        with :meth:`release` once the fill completes.
        """
        while self._busy and self._busy[0] <= now:
            heapq.heappop(self._busy)
        if len(self._busy) < self.size:
            self.acquires += 1
            self._note_occupancy()
            return now, 0.0
        grant = self._busy[0]
        # Every release at or before the grant time frees an entry.
        while self._busy and self._busy[0] <= grant:
            heapq.heappop(self._busy)
        stall = grant - now
        self.stall_cycles += stall
        if self.attr.enabled:
            self.attr.charge("mshr", self.name, stall)
        self.stalled_acquires += 1
        self.acquires += 1
        self._note_occupancy()
        return grant, stall

    def _note_occupancy(self) -> None:
        # The heap holds only entries still busy past the grant time, and
        # each acquire is released before the pool's next acquire, so the
        # granted entry plus the heap is the exact occupancy right now.
        occupancy = len(self._busy) + 1
        if occupancy > self.occupancy_hwm:
            self.occupancy_hwm = occupancy

    def release(self, at: float) -> None:
        """Mark one acquired entry busy until ``at``."""
        heapq.heappush(self._busy, at)

    @property
    def outstanding(self) -> int:
        return len(self._busy)

    def stats(self) -> dict:
        """Occupancy / stall accounting for ``level_stats`` and metrics."""
        return {
            "size": self.size,
            "acquires": self.acquires,
            "stalled_acquires": self.stalled_acquires,
            "stall_cycles": self.stall_cycles,
            "occupancy_hwm": self.occupancy_hwm,
        }

    def reset_stats(self) -> None:
        self.acquires = 0
        self.stall_cycles = 0.0
        self.stalled_acquires = 0
        self.occupancy_hwm = 0
