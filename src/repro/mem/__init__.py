"""Cache and memory-system substrate (Table III parameters).

A timeline-based cycle-approximate model: caches keep real tag arrays with
LRU and dirty state; misses occupy MSHR entries for their full duration
(the Figure 8 bottleneck); DRAM is a single bandwidth-limited channel.

* :mod:`repro.mem.mshr` — MSHR pools as token heaps.
* :mod:`repro.mem.cache` — set-associative tag arrays with banking.
* :mod:`repro.mem.dram` — the DDR4-2400-like channel model.
* :mod:`repro.mem.hierarchy` — the composed L1D/L2/LLC/DRAM system with
  scalar and vector ports.
* :mod:`repro.mem.reconfig` — ephemeral spawn/teardown of the EVE ways
  (Section V-E).
"""

from .mshr import MshrPool
from .cache import CacheArray
from .dram import DramChannel
from .hierarchy import Completion, MemorySystem
from .reconfig import ReconfigCost, spawn_cost, teardown_cost

__all__ = [
    "MshrPool",
    "CacheArray",
    "DramChannel",
    "Completion",
    "MemorySystem",
    "ReconfigCost",
    "spawn_cost",
    "teardown_cost",
]
