"""Set-associative cache tag arrays with LRU replacement and banking.

The tag arrays are real (numpy-backed), so hit/miss behaviour, conflict
evictions, and the dirty-line population the reconfiguration FSM must walk
(Section V-E) all emerge from the actual address streams the workloads
generate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import CacheConfig


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of the cache by a fill."""

    line_addr: int
    dirty: bool


class CacheArray:
    """Tags, valid/dirty bits, and LRU state for one cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.sets = config.sets
        self.ways = config.ways
        self.line_bytes = config.line_bytes
        self._tags = np.full((self.sets, self.ways), -1, dtype=np.int64)
        self._valid = np.zeros((self.sets, self.ways), dtype=bool)
        self._dirty = np.zeros((self.sets, self.ways), dtype=bool)
        self._stamp = np.zeros((self.sets, self.ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    # -- address mapping ----------------------------------------------------

    def _index(self, line_addr: int) -> Tuple[int, int]:
        line = line_addr // self.line_bytes
        return int(line % self.sets), int(line)

    def bank_of(self, line_addr: int) -> int:
        line = line_addr // self.line_bytes
        return int(line % self.config.banks)

    # -- operations ------------------------------------------------------------

    def lookup(self, line_addr: int, is_store: bool = False) -> bool:
        """Probe; on a hit, updates LRU (and dirty for stores)."""
        s, tag = self._index(line_addr)
        self._clock += 1
        ways = np.nonzero(self._valid[s] & (self._tags[s] == tag))[0]
        if ways.size:
            w = int(ways[0])
            self._stamp[s, w] = self._clock
            if is_store:
                self._dirty[s, w] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line_addr: int, dirty: bool = False) -> Optional[Eviction]:
        """Install a line, evicting the LRU way if the set is full."""
        s, tag = self._index(line_addr)
        self._clock += 1
        ways = np.nonzero(self._valid[s] & (self._tags[s] == tag))[0]
        if ways.size:  # already present (e.g. racing fills) — refresh
            w = int(ways[0])
            self._stamp[s, w] = self._clock
            self._dirty[s, w] |= dirty
            return None
        empty = np.nonzero(~self._valid[s])[0]
        if empty.size:
            w = int(empty[0])
            evicted = None
        else:
            w = int(np.argmin(self._stamp[s]))
            evicted = Eviction(line_addr=self._line_addr_of(s, w),
                               dirty=bool(self._dirty[s, w]))
        self._tags[s, w] = tag
        self._valid[s, w] = True
        self._dirty[s, w] = dirty
        self._stamp[s, w] = self._clock
        return evicted

    def _line_addr_of(self, s: int, w: int) -> int:
        return int(self._tags[s, w]) * self.line_bytes

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns whether it was dirty."""
        s, tag = self._index(line_addr)
        ways = np.nonzero(self._valid[s] & (self._tags[s] == tag))[0]
        if not ways.size:
            return False
        w = int(ways[0])
        dirty = bool(self._dirty[s, w])
        self._valid[s, w] = False
        self._dirty[s, w] = False
        return dirty

    # -- bulk state used by reconfiguration --------------------------------------

    def resident_lines(self, ways: Optional[slice] = None) -> Tuple[int, int]:
        """(valid lines, dirty lines) resident in the selected ways."""
        ways = ways if ways is not None else slice(None)
        valid = self._valid[:, ways]
        dirty = self._dirty[:, ways] & valid
        return int(valid.sum()), int(dirty.sum())

    def flush_ways(self, ways: slice) -> Tuple[int, int]:
        """Invalidate the selected ways; returns (lines walked, dirty)."""
        total, dirty = self.resident_lines(ways)
        self._valid[:, ways] = False
        self._dirty[:, ways] = False
        return total, dirty

    def warm_fraction(self) -> float:
        return float(self._valid.mean())

    # -- statistics -------------------------------------------------------------

    def stats(self) -> dict:
        accesses = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.misses / accesses if accesses else 0.0,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
