"""Ephemeral spawn / teardown of the EVE ways (Section V-E).

Spawning EVE halves the private L2's associativity and walks the carved-out
ways with a simple FSM: every resident line is invalidated (constant cycles
per line); dirty lines write back to the LLC first.  Because the hierarchy
is inclusive, the cost is linear in the resident-line count.  Returning the
ways to the cache is free — lines simply come back invalid.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import CacheArray

#: FSM cycles to invalidate one resident line.
INVALIDATE_CYCLES_PER_LINE = 1

#: Extra cycles to push one dirty line to the LLC (tag update + transfer).
WRITEBACK_CYCLES_PER_LINE = 4


@dataclass(frozen=True)
class ReconfigCost:
    """Cycle cost of one spawn (or teardown) event."""

    lines_walked: int
    dirty_lines: int
    cycles: int

    @property
    def is_free(self) -> bool:
        return self.cycles == 0


def spawn_cost(l2: CacheArray, eve_way_fraction: float = 0.5) -> ReconfigCost:
    """Carve out the EVE ways of ``l2``, returning the setup cost.

    The top ``eve_way_fraction`` of the ways are flushed; the L2 stalls for
    the walk but the core keeps running from L1 (Section V-E), which is why
    engine models charge this once, up front, on the vector timeline.
    """
    first_eve_way = int(l2.ways * (1.0 - eve_way_fraction))
    walked, dirty = l2.flush_ways(slice(first_eve_way, l2.ways))
    cycles = (walked * INVALIDATE_CYCLES_PER_LINE
              + dirty * WRITEBACK_CYCLES_PER_LINE)
    return ReconfigCost(lines_walked=walked, dirty_lines=dirty, cycles=cycles)


def teardown_cost() -> ReconfigCost:
    """Returning EVE ways to the cache costs nothing (Section V-E)."""
    return ReconfigCost(lines_walked=0, dirty_lines=0, cycles=0)
