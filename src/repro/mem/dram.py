"""Single-channel DDR4-2400-like main-memory model.

Each line request pays a fixed access latency and occupies the channel for
its transfer time (line size / peak bandwidth); requests serialise on the
channel, so a miss burst beyond the sustainable bandwidth queues — the
memory-bound plateau of vvadd and friends comes from here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..config import DramConfig
from ..obs.attribution import NULL_ATTRIBUTION
from ..obs.tracer import NULL_TRACER, SpanTracer


class DramChannel:
    """A bandwidth-limited, fixed-latency memory channel."""

    def __init__(self, config: DramConfig, line_bytes: int = 64,
                 tracer: Optional[SpanTracer] = None,
                 attribution=None) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.attr = attribution if attribution is not None else NULL_ATTRIBUTION
        self._next_free = 0.0
        self.requests = 0
        self.writebacks = 0
        self.busy_cycles = 0.0

    @property
    def transfer_cycles(self) -> float:
        """Channel occupancy of one line transfer."""
        return self.line_bytes / (self.config.bytes_per_cycle * self.config.channels)

    def service(self, now: float) -> Tuple[float, float]:
        """Issue one line request at ``now``.

        Returns ``(start, done)``: the transfer starts when the channel is
        free and data arrives a fixed access latency after that.
        """
        start = max(now, self._next_free)
        self._next_free = start + self.transfer_cycles
        done = start + self.config.access_latency
        self.requests += 1
        self.busy_cycles += self.transfer_cycles
        if self.attr.enabled:
            self.attr.charge("dram", "busy", self.transfer_cycles)
        if self.tracer.enabled:
            self.tracer.span("DRAM", "service", start,
                             start + self.transfer_cycles, queued=start - now)
            # Counter track: transfers still queued behind this one (the
            # backlog the serialised channel has accumulated).
            self.tracer.sample("DRAM", "dram_backlog", now,
                               (self._next_free - now) / self.transfer_cycles)
        return start, done

    def writeback(self, now: float) -> float:
        """Queue a dirty-line writeback; only occupies bandwidth."""
        start = max(now, self._next_free)
        self._next_free = start + self.transfer_cycles
        self.requests += 1
        self.writebacks += 1
        self.busy_cycles += self.transfer_cycles
        if self.attr.enabled:
            self.attr.charge("dram", "busy", self.transfer_cycles)
        if self.tracer.enabled:
            self.tracer.span("DRAM", "writeback", start,
                             start + self.transfer_cycles)
            self.tracer.sample("DRAM", "dram_backlog", now,
                               (self._next_free - now) / self.transfer_cycles)
        return start + self.transfer_cycles

    def utilisation(self, elapsed: float) -> float:
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0

    def stats(self, elapsed: float = 0.0) -> dict:
        """Channel accounting (utilisation needs the run's total cycles)."""
        return {
            "requests": self.requests,
            "writebacks": self.writebacks,
            "busy_cycles": self.busy_cycles,
            "utilisation": self.utilisation(elapsed),
        }

    def reset_stats(self) -> None:
        self.requests = 0
        self.writebacks = 0
        self.busy_cycles = 0.0
        self._next_free = 0.0
