"""The composed memory system: L1D / L2 / LLC tag arrays + MSHRs + DRAM.

Three ports mirror the paper's plumbing (Section VII-A: "special ports to
connect vector units to either the L2 cache or the LLC"):

* ``l1``  — the scalar core's port (and the integrated vector unit's,
  whose memory μops go through the LSQ like scalar accesses);
* ``l2``  — the decoupled vector engine's port;
* ``llc`` — EVE's port (its VMU bypasses the halved private L2).

The hierarchy is inclusive: an LLC eviction invalidates inner copies.
Misses hold an MSHR at their level until the fill returns; acquiring a
full pool stalls the requester (Figure 8's metric for the EVE VMU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import SystemConfig
from ..errors import MemoryModelError
from ..obs.attribution import NULL_ATTRIBUTION
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.tracer import NULL_TRACER, SpanTracer
from .cache import CacheArray
from .dram import DramChannel
from .mshr import MshrPool

PORTS = ("l1", "l2", "llc")

#: Trace track carrying each port's access → completion spans.
_PORT_TRACK = {"l1": "L1D", "l2": "L2", "llc": "LLC"}


@dataclass(frozen=True)
class Completion:
    """Outcome of one line request."""

    grant: float       # when the request was accepted (after MSHR stalls)
    done: float        # when the data is available
    level: str         # 'l1' | 'l2' | 'llc' | 'dram'
    mshr_stall: float  # time spent waiting to even send the request


class MemorySystem:
    """Timeline-based cycle-approximate model of Table III's hierarchy."""

    def __init__(self, config: SystemConfig,
                 tracer: Optional[SpanTracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 attribution=None) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.attr = attribution if attribution is not None else NULL_ATTRIBUTION
        for prefix in ("mem", "mshr", "dram"):
            self.metrics.reserve(prefix, "MemorySystem")
        self.l1d = CacheArray(config.l1d)
        self.l2 = CacheArray(config.l2)
        self.llc = CacheArray(config.llc)
        self.l1d_mshrs = MshrPool(config.l1d.mshrs, "l1d",
                                  attribution=self.attr)
        self.l2_mshrs = MshrPool(config.l2.mshrs, "l2",
                                 attribution=self.attr)
        self.llc_mshrs = MshrPool(config.llc.mshrs, "llc",
                                  attribution=self.attr)
        self.dram = DramChannel(config.dram, config.llc.line_bytes,
                                tracer=self.tracer, attribution=self.attr)
        self._l2_bank_free = np.zeros(config.l2.banks)
        #: Figure 8 accounting for the vector (LLC) port.
        self.vector_mshr_stall = 0.0
        self.vector_requests = 0
        self.vector_stalled_requests = 0
        #: Pre-bound per-port latency histograms (no-ops when disabled).
        self._latency_hist = {
            port: self.metrics.histogram(f"mem.{port}.latency")
            for port in PORTS}

    # -- internal level chain ------------------------------------------------

    def _l2_bank_delay(self, line_addr: int, at: float) -> float:
        bank = self.l2.bank_of(line_addr)
        start = max(at, self._l2_bank_free[bank])
        self._l2_bank_free[bank] = start + 1.0  # pipelined, 1-cycle occupancy
        return start

    def _from_dram(self, now: float, line_addr: int, is_store: bool) -> Completion:
        grant, stall = self.llc_mshrs.acquire(now)
        _, done = self.dram.service(grant + self.config.llc.hit_latency)
        evicted = self.llc.fill(line_addr, dirty=is_store)
        if evicted is not None:
            if evicted.dirty:
                self.dram.writeback(done)
            # Inclusive hierarchy: drop inner copies of the victim.
            if self.l2.invalidate(evicted.line_addr):
                self.dram.writeback(done)
            self.l1d.invalidate(evicted.line_addr)
        self.llc_mshrs.release(done)
        return Completion(grant=grant, done=done, level="dram", mshr_stall=stall)

    def _from_llc(self, now: float, line_addr: int, is_store: bool) -> Completion:
        if self.llc.lookup(line_addr, is_store):
            return Completion(grant=now, done=now + self.config.llc.hit_latency,
                              level="llc", mshr_stall=0.0)
        return self._from_dram(now, line_addr, is_store)

    def _from_l2(self, now: float, line_addr: int, is_store: bool) -> Completion:
        start = self._l2_bank_delay(line_addr, now)
        if self.l2.lookup(line_addr, is_store):
            return Completion(grant=now, done=start + self.config.l2.hit_latency,
                              level="l2", mshr_stall=start - now)
        grant, stall = self.l2_mshrs.acquire(start)
        inner = self._from_llc(grant + self.config.l2.hit_latency, line_addr, False)
        evicted = self.l2.fill(line_addr, dirty=is_store)
        if evicted is not None and evicted.dirty:
            # Dirty L2 victims write back into the LLC.
            if not self.llc.lookup(evicted.line_addr, is_store=True):
                self.llc.fill(evicted.line_addr, dirty=True)
        self.l2_mshrs.release(inner.done)
        return Completion(grant=grant, done=inner.done, level=inner.level,
                          mshr_stall=stall + inner.mshr_stall)

    def _from_l1(self, now: float, line_addr: int, is_store: bool) -> Completion:
        if self.l1d.lookup(line_addr, is_store):
            return Completion(grant=now, done=now + self.config.l1d.hit_latency,
                              level="l1", mshr_stall=0.0)
        grant, stall = self.l1d_mshrs.acquire(now)
        inner = self._from_l2(grant + self.config.l1d.hit_latency, line_addr, False)
        evicted = self.l1d.fill(line_addr, dirty=is_store)
        if evicted is not None and evicted.dirty:
            if not self.l2.lookup(evicted.line_addr, is_store=True):
                self.l2.fill(evicted.line_addr, dirty=True)
        self.l1d_mshrs.release(inner.done)
        return Completion(grant=grant, done=inner.done, level=inner.level,
                          mshr_stall=stall + inner.mshr_stall)

    # -- public ports ---------------------------------------------------------

    def access(self, now: float, line_addr: int, is_store: bool,
               port: str = "l1") -> Completion:
        """Issue one cache-line request on the given port."""
        if port == "l1":
            completion = self._from_l1(now, line_addr, is_store)
        elif port == "l2":
            completion = self._from_l2(now, line_addr, is_store)
        elif port == "llc":
            completion = self._from_llc(now, line_addr, is_store)
            self.vector_requests += 1
            self.vector_mshr_stall += completion.mshr_stall
            if completion.mshr_stall > 0:
                self.vector_stalled_requests += 1
        else:
            raise MemoryModelError(
                f"unknown port {port!r} (expected one of {PORTS})")
        if self.tracer.enabled:
            self.tracer.span(
                _PORT_TRACK[port],
                f"{'st' if is_store else 'ld'}:{completion.level}",
                now, completion.done, line=line_addr,
                mshr_stall=completion.mshr_stall)
            # Counter tracks: the accessed chain's MSHR pool occupancy
            # (every port ends up traversing l1d/l2/llc pools; sampling
            # the entry pool keeps the trace compact and matches the HWM
            # gauges in level_stats).
            pool = (self.l1d_mshrs if port == "l1"
                    else self.l2_mshrs if port == "l2"
                    else self.llc_mshrs)
            self.tracer.sample("MSHR", f"{pool.name}_mshr_occupancy",
                               completion.grant, pool.outstanding)
        if self.metrics.enabled:
            self._latency_hist[port].observe(completion.done - now)
        return completion

    # -- statistics -------------------------------------------------------------

    def level_stats(self, elapsed: float = 0.0) -> dict:
        """Hit/miss pairs per level, plus MSHR occupancy / stall accounting
        and DRAM channel utilisation (``elapsed`` is the run's total
        cycles; utilisation reads 0 when it is not supplied)."""
        stats = {
            "l1d": (self.l1d.hits, self.l1d.misses),
            "l2": (self.l2.hits, self.l2.misses),
            "llc": (self.llc.hits, self.llc.misses),
            "dram": self.dram.stats(elapsed),
        }
        for pool in (self.l1d_mshrs, self.l2_mshrs, self.llc_mshrs):
            stats[f"{pool.name}_mshr"] = pool.stats()
        return stats

    def populate_metrics(self, elapsed: float = 0.0) -> None:
        """Publish the hierarchy's aggregate stats into the registry
        (called once at end of run — keeps the hot path lean)."""
        metrics = self.metrics
        if not metrics.enabled:
            return
        for name, cache in (("l1d", self.l1d), ("l2", self.l2),
                            ("llc", self.llc)):
            for key, value in cache.stats().items():
                if key != "miss_rate":
                    metrics.counter(f"mem.{name}.{key}").inc(value)
        for pool in (self.l1d_mshrs, self.l2_mshrs, self.llc_mshrs):
            prefix = f"mshr.{pool.name}"
            occupancy = metrics.gauge(f"{prefix}.occupancy")
            occupancy.set(pool.occupancy_hwm)
            occupancy.set(pool.outstanding)
            metrics.counter(f"{prefix}.stall_cycles").inc(pool.stall_cycles)
            metrics.counter(f"{prefix}.acquires").inc(pool.acquires)
            metrics.counter(f"{prefix}.stalled_acquires").inc(
                pool.stalled_acquires)
        dram = self.dram.stats(elapsed)
        metrics.counter("dram.requests").inc(dram["requests"])
        metrics.counter("dram.writebacks").inc(dram["writebacks"])
        metrics.counter("dram.busy_cycles").inc(dram["busy_cycles"])
        metrics.gauge("dram.utilisation").set(dram["utilisation"])
        metrics.counter("mem.vector.requests").inc(self.vector_requests)
        metrics.counter("mem.vector.stalled_requests").inc(
            self.vector_stalled_requests)
        metrics.counter("mem.vector.mshr_stall_cycles").inc(
            self.vector_mshr_stall)

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l2, self.llc):
            cache.reset_stats()
        for pool in (self.l1d_mshrs, self.l2_mshrs, self.llc_mshrs):
            pool.reset_stats()
        self.dram.reset_stats()
        self.vector_mshr_stall = 0.0
        self.vector_requests = 0
        self.vector_stalled_requests = 0
