"""``python -m repro`` entry point."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early — exit quietly.
        sys.stderr.close()
        sys.exit(0)
