"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``systems``
    List the Table III systems with their derived parameters.
``workloads``
    List the Table IV workloads and their (scaled) default inputs.
``run SYSTEM WORKLOAD``
    Simulate one (system, workload) pair and print cycles, time, and the
    execution breakdown.  ``--metrics-out FILE`` also captures the full
    metrics-registry snapshot as JSON.
``compare WORKLOAD``
    Run a workload on every system and print the speedup column.
    ``--json`` emits a machine-readable report (per-system SimResult
    fields + stall breakdown + the simulator's own phase wall-clock);
    ``--metrics-out FILE`` captures per-system registry snapshots.
``sweep``
    Simulate a systems x workloads cross-product (default: the full
    Figure 6 grid) and print per-cell cycles and speedups.
``trace SYSTEM WORKLOAD -o FILE``
    Simulate with the timeline tracer enabled and export Chrome
    trace-event JSON (load it at https://ui.perfetto.dev): one track per
    unit/structure (VSU, VMU, DTU, VRU, DRAM, caches, MSHRs, ...).
``stats SYSTEM WORKLOAD``
    Simulate with the metrics registry enabled and print every counter /
    gauge / histogram (``--json`` or ``--csv`` for machines), plus the
    cycle-attribution bound-by split.
``attribute SYSTEM WORKLOAD``
    Simulate with the cycle-attribution engine enabled: every unit cycle
    is charged to a trace instruction and stall bucket (bit-exact
    conservation against the machine's own accounting is enforced), the
    timed critical path and per-instruction slack are computed over the
    dependence graph, and the top-K bottleneck instructions / macro-op
    families are ranked.  ``--flame-out`` writes a folded-stack
    flamegraph; ``--perfetto-out`` writes stall-bucket counter tracks.
``bottleneck``
    The bound-by taxonomy summary (compute / dep / memory / reconfig)
    across a systems x workloads grid — one conservation-checked
    attribution run per cell.
``uprog MACRO``
    Print the micro-program for a macro-operation (disassembled) and its
    cycle count per parallelization factor.
``lint``
    Statically verify micro-programs (CFG + dataflow analysis): every ROM
    program for every parallelization factor by default, or an assembly
    listing via ``--asm``.  Exits non-zero when errors are found.
``check``
    Statically analyze vector traces (def-use chains, memory footprints,
    hazard checkers, dependence graph): every workload by default, or
    saved fuzz cases via ``--corpus DIR``.  Exits non-zero on ANY
    finding.  ``lint`` and ``check`` share one ``--json`` findings
    schema.
``figure NAME``
    Regenerate a figure/table (fig1, fig2, table3, area).
``fuzz``
    Differentially fuzz the micro-programmed engine against the numpy
    oracle: seeded random RVV programs at every segment width, shrunk to
    minimal repros on mismatch (``--replay FILE`` re-runs a saved case).
    Exits non-zero when any divergence survives.
``faults``
    Run a seeded fault-injection campaign (bit flips, stuck carry
    segments, dropped/latched writebacks) and classify every injection
    as masked / detected / SDC against the oracle.
``history``
    List the run records archived in the run store (``.eve-runs/``),
    filterable by ``--limit`` / ``--kind`` / ``--workload`` /
    ``--system``.
``diff BASELINE [CURRENT]``
    Compare two run records under per-metric tolerance policies (exact
    for cycle counts, relative-epsilon for wall-clock, direction-aware
    for speedups); exits non-zero on a gated regression.
``scorecard``
    Run the Figure 6 / Table IV / Figure 7 / Figure 8 harnesses and
    grade every datapoint against the paper's published values.
``events``
    Inspect a campaign event log (``--tail N``, ``--json``,
    ``--campaign ID``); ``--check`` exits non-zero when any unit
    violates the exactly-one-terminal-event conservation invariant;
    ``--follow`` streams events as campaigns append them (tail -f).
``report``
    Render the self-contained offline HTML dashboard (run history,
    scorecard grades, metric trend sparklines with regression badges,
    campaign telemetry, attribution excerpt) from the run store and an
    optional event log.
``cache``
    Inspect the on-disk cell cache (entry/byte census incl. quarantined
    ``*.corrupt`` files) and prune it least-recently-used-first to a
    byte budget (``--prune --max-bytes N``).
``serve``
    Run the multi-tenant simulation job service: an asyncio HTTP API
    over the sweep engine with per-client fair scheduling, priority
    lanes, in-flight cell dedup (overlapping jobs simulate each unique
    cell exactly once), a crash-safe job journal, and graceful SIGTERM
    drain.
``submit KIND`` / ``jobs`` / ``cancel JOB``
    Talk to a running service: submit a sweep/compare/fuzz/faults job
    (``--wait --json`` prints a result byte-identical to the direct CLI
    run minus its wall-clock cache block), list jobs and dedup/cache
    counters, or cancel a queued/running job.

System and workload names are matched case-insensitively (``o3+eve-4``
works), and ``run`` / ``trace`` / ``stats`` accept ``--tiny`` to use the
test-sized problem inputs.  ``run`` / ``compare`` / ``stats`` accept
``--record`` (archive the run into the run store) and ``--baseline REF``
(diff the fresh run against a stored record or golden-baseline file).
``compare`` / ``sweep`` / ``scorecard`` accept ``--jobs N`` to fan the
(system, workload) cells out over N worker processes backed by the
on-disk cell cache (``--cache-dir`` / ``--no-cache``); results are
bit-identical to a serial run.  ``run`` / ``compare`` / ``sweep`` accept
``--seed N`` to vary the generated workload inputs; the seed is folded
into cache keys and record fingerprints so seeded runs never collide
with the default-seed results.  ``sweep`` / ``compare`` / ``fuzz`` /
``faults`` accept ``--events [FILE]`` (append the campaign's lifecycle
events to a JSONL log), ``--progress`` (force the live progress line
even without a TTY), and ``--quiet`` (suppress it); telemetry never
changes simulation results — a telemetry-on sweep is byte-identical to
a telemetry-off one.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from . import __version__
from .compiler import compiler_descriptor
from .config import all_system_names
from .errors import MicroProgramError, ReproError, RunStoreError
from .experiments import (ExperimentRunner, ParallelRunner, format_table,
                          sweep_result_payload)
from .experiments.figures import ALL_APPS, area_table, figure2, table3
from .experiments.parallel import (DEFAULT_CACHE_ROOT, cache_stats,
                                   prune_cache, sweep_config_fingerprint,
                                   sweep_pairs)
from .experiments.systems import canonical_system as _canonical_system
from .faults.inject import FAULT_MODELS
from .obs import MetricsRegistry, SelfProfiler, SpanTracer
from .obs.diff import DEFAULT_SPEEDUP_BUDGET, diff_records
from .obs.events import (DEFAULT_EVENTS_PATH, CampaignTelemetry, EventLog,
                         NULL_TELEMETRY, Watchdog, campaign_summaries,
                         check_conservation, follow_events, read_events)
from .obs.htmlreport import write_report
from .obs.progress import make_progress
from .obs.render import emit_csv, emit_json, findings_json, write_json
from .obs.runstore import DEFAULT_ROOT, RunRecord, RunStore, make_record
from .obs.scorecard import FIGURES, build_scorecard, scorecard_pairs
from .obs.trend import filter_history, historical_cell_seconds
from .uops import MacroOpRom, assemble, disassemble, lint_program, lint_rom
from .workloads import DEFAULT_SEED, REGISTRY, tiny_overrides
from .workloads import canonical_workload as _canonical_workload

EVE_FACTORS = (1, 2, 4, 8, 16, 32)


def _make_runner(args, collect_metrics: bool = False,
                 telemetry=None) -> ExperimentRunner:
    override = tiny_overrides() if getattr(args, "tiny", False) else None
    seed = getattr(args, "seed", None)
    if seed is None:
        seed = DEFAULT_SEED
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    compile_traces = getattr(args, "compile", True)
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs != 1:
        cache_root = (None if getattr(args, "no_cache", False)
                      else getattr(args, "cache_dir", DEFAULT_CACHE_ROOT))
        return ParallelRunner(params_override=override, jobs=jobs or None,
                              cache_root=cache_root,
                              collect_metrics=collect_metrics, seed=seed,
                              telemetry=telemetry,
                              compile_traces=compile_traces)
    return ExperimentRunner(params_override=override, seed=seed,
                            telemetry=telemetry,
                            compile_traces=compile_traces)


def _make_telemetry(args, kind: str) -> Optional[CampaignTelemetry]:
    """Build the campaign telemetry hub from ``--events`` / ``--progress``
    / ``--quiet``, or return ``None`` (the zero-cost default) when
    neither an event log nor a live progress display is wanted.

    Progress auto-detects: on by default when stderr is a TTY, off
    otherwise (scripts, tests, CI) unless ``--progress`` forces it.
    """
    events_path = getattr(args, "events", None)
    quiet = getattr(args, "quiet", False)
    force = getattr(args, "progress", False)
    progress = make_progress(kind, quiet=quiet, force=force)
    if events_path is None and progress is None:
        return None
    hint = None
    try:
        hint = historical_cell_seconds(
            RunStore(getattr(args, "store", DEFAULT_ROOT)))
    except RunStoreError:
        hint = None  # a corrupt store must not kill the campaign
    if progress is not None:
        progress.hint_seconds = hint
    log = EventLog(events_path) if events_path else None
    return CampaignTelemetry(kind, log=log, progress=progress,
                             watchdog=Watchdog(hint_seconds=hint),
                             fingerprint=sweep_config_fingerprint())


def _finalize_telemetry(telemetry: Optional[CampaignTelemetry]) -> None:
    """Seal the campaign (idempotent); called from ``finally`` blocks so
    even an aborted campaign persists the events it buffered."""
    if telemetry is None:
        return
    summary = telemetry.finalize()
    if summary.get("written"):
        print(f"events: {summary['written']} event(s) "
              f"[campaign {summary['campaign']}] -> {summary['log_path']}",
              file=sys.stderr)
    if summary.get("stalled"):
        print(f"WARNING: {len(summary['stalled'])} unit(s) exceeded the "
              f"watchdog threshold: {', '.join(summary['stalled'][:5])}",
              file=sys.stderr)


def _fingerprint_extra(runner: ExperimentRunner):
    """Record-fingerprint payload: params override plus any non-default
    input seed, so seeded records are config-distinct from default runs.
    Compiled runs additionally fold in the compiler descriptor (pass
    list + compiler version), so a record produced through the trace
    compiler can never be mistaken for an interpreter baseline."""
    extra = dict(runner.params_override) if runner.params_override else {}
    if runner.seed != DEFAULT_SEED:
        extra["__seed__"] = runner.seed
    descriptor = compiler_descriptor(getattr(runner, "compile_traces", False))
    if descriptor is not None:
        extra["__compiler__"] = descriptor
    return extra or None


def _prefetch(runner: ExperimentRunner, pairs) -> None:
    """Fan the cells out before the (serial) reporting loops run.

    The parallel runner always prefetches here; the serial runner only
    does when campaign telemetry is attached (prefetching is what emits
    the per-cell events) and otherwise simulates lazily inside the
    harnesses exactly as before.
    """
    if isinstance(runner, ParallelRunner) or runner.telemetry.enabled:
        stats = runner.prefetch(pairs)
        print(f"sweep: {stats['cells']} cells ({stats['simulated']} "
              f"simulated, {stats['cached']} cached) with "
              f"{stats['jobs']} worker(s) in {stats['seconds']:.2f}s",
              file=sys.stderr)


def _recording(args) -> bool:
    return bool(getattr(args, "record", False)
                or getattr(args, "baseline", None))


def _finish_record(args, record: Optional[RunRecord]) -> int:
    """Archive and/or baseline-diff a freshly built record.

    Shared tail of ``run`` / ``compare`` / ``stats``: append to the run
    store when ``--record`` was given, and when ``--baseline REF`` was
    given diff the fresh record against the resolved baseline, print the
    regression report, and propagate the differ's exit code.
    """
    if record is None:
        return 0
    store = RunStore(args.store)
    baseline = None
    if args.baseline:
        # Resolve before appending so ``--baseline latest`` means "the
        # previous record", not the one this invocation just archived.
        try:
            baseline = store.resolve(args.baseline)
        except RunStoreError as exc:
            print(f"baseline: {exc}", file=sys.stderr)
            return 2
    if args.record:
        record_id = store.append(record)
        print(f"recorded {record_id} -> {store.runs_path}", file=sys.stderr)
    if baseline is None:
        return 0
    diff = diff_records(baseline, record)
    _print_diff(diff)
    return diff.exit_code()


def _print_diff(diff) -> None:
    rows = diff.table_rows()
    if rows:
        print(format_table(
            ["metric", "baseline", "current", "rel", "status"], rows))
    counts = diff.counts()
    regressions = diff.regressions()
    summary = ", ".join(f"{n} {status}" for status, n in counts.items() if n)
    print(f"diff vs {diff.baseline.record_id or diff.baseline.label or 'baseline'}: "
          f"{summary or 'identical'}")
    if regressions:
        print(f"REGRESSION: {len(regressions)} gated metric(s) regressed "
              f"beyond budget", file=sys.stderr)


def _cmd_systems(_args) -> int:
    rows = [[r["system"], r["l2_kb"], r["hardware_vl"], r["vlmax"],
             r["cycle_time_ns"]] for r in table3()]
    print(format_table(
        ["system", "L2_KB", "hw_VL", "trace_VLMAX", "cycle_ns"], rows))
    return 0


def _cmd_workloads(_args) -> int:
    rows = [[wl.name, wl.suite, str(wl.params)]
            for wl in sorted(REGISTRY.values(), key=lambda w: w.name)]
    print(format_table(["workload", "suite", "default params"], rows))
    return 0


def _single_run_record(kind: str, args, runner: ExperimentRunner, result,
                       metrics: Optional[MetricsRegistry]) -> RunRecord:
    record = make_record(
        kind, label=f"{result.system}:{result.workload}",
        tiny=getattr(args, "tiny", False),
        command=f"repro {kind} {result.system} {result.workload}",
        fingerprint_extra=_fingerprint_extra(runner))
    record.add_result(result.system, result.workload, cycles=result.cycles,
                      time_ns=result.time_ns,
                      instructions=result.instructions)
    if metrics is not None:
        record.metrics = metrics.flat()
    record.self_profile = runner.profiler.as_dict()
    return record


def _cmd_run(args) -> int:
    runner = _make_runner(args)
    metrics = (MetricsRegistry()
               if args.metrics_out or _recording(args) else None)
    result = runner.run(args.system, args.workload, metrics=metrics)
    print(f"system    : {result.system}")
    print(f"workload  : {result.workload}")
    print(f"cycles    : {result.cycles:.0f}")
    print(f"time      : {result.time_ns / 1e3:.1f} us")
    if result.breakdown is not None:
        rows = [[bucket, value, value / result.cycles]
                for bucket, value in result.breakdown.as_dict().items()
                if value > 0]
        print(format_table(["bucket", "cycles", "fraction"], rows))
    if args.metrics_out:
        write_json(args.metrics_out, {
            "system": result.system,
            "workload": result.workload,
            "metrics": metrics.snapshot(),
            "self_profile": runner.profiler.as_dict(),
        })
    record = (_single_run_record("run", args, runner, result, metrics)
              if _recording(args) else None)
    return _finish_record(args, record)


def _cmd_compare(args) -> int:
    want_metrics = bool(args.metrics_out) or _recording(args)
    telemetry = _make_telemetry(args, "compare")
    runner = _make_runner(args, collect_metrics=want_metrics,
                          telemetry=telemetry)
    try:
        _prefetch(runner, [(system, args.workload)
                           for system in all_system_names()])
    finally:
        _finalize_telemetry(telemetry)
    base = runner.run("IO", args.workload)
    per_system = {}
    metrics_out = {}
    metrics_flat = {}
    rows = []
    record = None
    if _recording(args):
        record = make_record(
            "compare", label=args.workload, tiny=args.tiny,
            command=f"repro compare {args.workload}",
            fingerprint_extra=_fingerprint_extra(runner))
        record.speedup_baseline = "IO"
    for system in all_system_names():
        flat = snapshot = None
        prefetched = (runner.cell_metrics(system, args.workload)
                      if want_metrics else None)
        if prefetched is not None:
            # A sweep worker already captured this cell's registry;
            # reuse it instead of re-simulating with instrumentation.
            flat, snapshot = prefetched
            result = runner.run(system, args.workload)
        else:
            metrics = MetricsRegistry() if want_metrics else None
            result = runner.run(system, args.workload, metrics=metrics)
            if metrics is not None:
                flat, snapshot = metrics.flat(), metrics.snapshot()
        speedup = base.time_ns / result.time_ns
        rows.append([system, result.cycles, result.time_ns / 1e3, speedup])
        entry = result.to_json_dict()
        entry.pop("metrics", None)
        entry["speedup_vs_IO"] = speedup
        per_system[system] = entry
        if snapshot is not None:
            metrics_out[system] = snapshot
            for name, value in flat.items():
                metrics_flat[f"{system}.{name}"] = value
        if record is not None:
            record.add_result(system, args.workload, cycles=result.cycles,
                              time_ns=result.time_ns,
                              instructions=result.instructions)
            record.speedups.setdefault(args.workload, {})[system] = speedup
    if args.json:
        emit_json({
            "workload": args.workload,
            "baseline": "IO",
            "systems": per_system,
            "self_profile": runner.profiler.as_dict(),
        })
    else:
        print(format_table(
            ["system", "cycles", "time_us", "speedup_vs_IO"], rows))
    if args.metrics_out:
        write_json(args.metrics_out, {
            "workload": args.workload,
            "metrics": metrics_out,
            "self_profile": runner.profiler.as_dict(),
        })
    if record is not None:
        record.metrics = metrics_flat
        record.self_profile = runner.profiler.as_dict()
    return _finish_record(args, record)


def _sweep_cache_stats(stats) -> dict:
    """The sweep's explicit cache telemetry: disk hit/miss/corrupt for
    the parallel executor, warm/cold in-memory counts for the serial
    runner (which has no disk cache)."""
    return {"hits": stats.get("cache_hits", stats["cached"]),
            "misses": stats.get("cache_misses", stats["simulated"]),
            "corrupt": stats.get("cache_corrupt", 0)}


def _cmd_sweep(args) -> int:
    telemetry = _make_telemetry(args, "sweep")
    runner = _make_runner(args, telemetry=telemetry)
    systems = args.systems or all_system_names()
    workloads = args.workloads or sorted(REGISTRY)
    pairs = sweep_pairs(systems, workloads)
    try:
        stats = runner.prefetch(pairs)
    finally:
        _finalize_telemetry(telemetry)
    print(f"sweep: {stats['cells']} cells ({stats['simulated']} simulated, "
          f"{stats['cached']} cached) with {stats['jobs']} worker(s) in "
          f"{stats['seconds']:.2f}s", file=sys.stderr)
    disk_cache = _sweep_cache_stats(stats)
    if disk_cache["corrupt"]:
        print(f"sweep cache: {disk_cache['corrupt']} corrupt entr(y/ies) "
              f"quarantined (*.corrupt) and re-simulated", file=sys.stderr)
    # The deterministic document core is shared with the job service
    # (repro submit sweep --wait --json must be byte-identical to this
    # payload minus the wall-clock "cache" block appended below).
    payload = sweep_result_payload(runner, systems, workloads)
    cells = payload["cells"]
    speedups = payload["speedups"]
    rows = []
    for system, workload in pairs:
        cell = cells[workload][system]
        row = [workload, system, cell["cycles"], cell["time_ns"] / 1e3]
        if payload["baseline"]:
            row.append(speedups[workload][system])
        rows.append(row)
    if args.json:
        emit_json(dict(payload, cache=disk_cache))
    else:
        headers = ["workload", "system", "cycles", "time_us"]
        if payload["baseline"]:
            headers.append("speedup_vs_IO")
        print(format_table(headers, rows))
    record = None
    if _recording(args):
        record = make_record(
            "sweep", label=f"{len(workloads)}x{len(systems)}",
            tiny=args.tiny, command="repro sweep",
            fingerprint_extra=_fingerprint_extra(runner))
        for workload, per_system in cells.items():
            for system, cell in per_system.items():
                record.add_result(system, workload, cycles=cell["cycles"],
                                  time_ns=cell["time_ns"],
                                  instructions=cell["instructions"])
        if payload["baseline"]:
            record.speedup_baseline = "IO"
            record.speedups = {workload: dict(per_system)
                               for workload, per_system in speedups.items()}
        record.self_profile = runner.profiler.as_dict()
        record.extra["sweep"] = {k: stats[k] for k in
                                 ("cells", "simulated", "cached", "jobs",
                                  "seconds", "cache_hits", "cache_misses",
                                  "cache_corrupt") if k in stats}
    return _finish_record(args, record)


def _cmd_trace(args) -> int:
    runner = _make_runner(args)
    tracer = SpanTracer(process=f"repro:{args.system}:{args.workload}")
    result = runner.run(args.system, args.workload, tracer=tracer)
    with runner.profiler.phase("report"):
        tracer.export(args.output)
    tracks = ", ".join(tracer.track_names())
    print(f"system    : {result.system}")
    print(f"workload  : {result.workload}")
    print(f"cycles    : {result.cycles:.0f}")
    print(f"events    : {tracer.num_events}")
    print(f"tracks    : {tracks}")
    print(f"trace     : {args.output}  (open in https://ui.perfetto.dev)")
    return 0


def _attribution_cell(runner: ExperimentRunner, system: str, workload: str,
                      metrics: Optional[MetricsRegistry] = None,
                      top: int = 10):
    """Run one attributed cell and build its bottleneck report.

    Returns ``(result, collector, nodes, report)``; raises
    :class:`~repro.errors.AttributionError` when the conservation gate
    fails.  Scalar traces have no dependence graph — the report
    degenerates to the single heaviest node.
    """
    from .analysis import build_depgraph
    from .obs import (AttributionCollector, build_bottleneck_report,
                      collect_nodes)
    attr = AttributionCollector()
    result = runner.run(system, workload, metrics=metrics, attribution=attr)
    attr.require_conserved(context=f"{result.system}/{result.workload}")
    trace = runner.trace_for(system, workload)
    nodes = collect_nodes(attr, trace)
    graph = build_depgraph(trace) if trace.vlmax is not None else None
    report = build_bottleneck_report(attr, nodes, graph, result.system,
                                     result.workload, top=top)
    return result, attr, nodes, report


def _print_bottleneck_report(report, max_rows: int = 10) -> None:
    from .obs.critpath import TAXONOMY_CLASSES
    shares = "  ".join(f"{cls}:{report.bound_by.get(cls, 0.0):.1%}"
                       for cls in TAXONOMY_CLASSES)
    print(f"bound by  : {report.dominant}   ({shares})")
    cp = report.critical_path
    print(f"crit path : {cp.cycles:.0f} cycles over {len(cp.path)} "
          f"instruction(s) "
          f"({cp.cycles / report.cycles:.1%} of execution)"
          if report.cycles else "crit path : empty")
    print(f"stall     : {report.total_stall:.0f} recoverable cycle(s); "
          f"top {len(report.instructions)} instructions cover "
          f"{report.instruction_coverage:.1%}")
    if report.instructions:
        shown = report.instructions[:max_rows]
        rows = [[e.rank, e.label, f"{e.weight:.0f}", f"{e.stall:.0f}",
                 f"{e.slack:.0f}", "*" if e.on_critical_path else "",
                 e.bound_by] for e in shown]
        print(format_table(
            ["#", "instruction", "cycles", "stall", "slack", "cp",
             "bound_by"], rows))
        hidden = len(report.instructions) - len(shown)
        if hidden > 0:
            print(f"  (+{hidden} more ranked instruction(s) to reach "
                  f"{report.instruction_coverage:.1%} stall coverage; "
                  f"see --json)")
    if report.families:
        rows = [[e.rank, e.label, e.count, f"{e.weight:.0f}",
                 f"{e.stall:.0f}", "*" if e.on_critical_path else "",
                 e.bound_by] for e in report.families]
        print(format_table(
            ["#", "macro family", "n", "cycles", "stall", "cp",
             "bound_by"], rows))


def _cmd_attribute(args) -> int:
    from .obs import (attribution_record_payload, counter_trace_dict,
                      folded_stacks, write_folded)
    runner = _make_runner(args)
    metrics = MetricsRegistry() if _recording(args) else None
    result, attr, nodes, report = _attribution_cell(
        runner, args.system, args.workload, metrics=metrics, top=args.top)
    attributed, total = attr.coverage()
    payload = report.to_json_dict()
    payload["conservation"] = {
        "attributed_cycles": attributed, "total_cycles": total,
        "units": {unit: sum(buckets.values())
                  for unit, buckets in sorted(attr.unit_totals().items())},
    }
    payload["attribution"] = attribution_record_payload(attr, report)
    if args.flame_out:
        write_folded(args.flame_out, folded_stacks(nodes, result.workload))
    if args.perfetto_out:
        write_json(args.perfetto_out, counter_trace_dict(
            nodes, process=f"repro:{result.system}:{result.workload}"))
    if args.json:
        emit_json(payload)
    else:
        print(f"system    : {result.system}")
        print(f"workload  : {result.workload}")
        print(f"cycles    : {result.cycles:.0f}")
        print(f"conserved : {attributed:.0f} cycle(s) attributed across "
              f"{len(attr.unit_totals())} unit(s) [bit-exact]")
        _print_bottleneck_report(report, max_rows=args.top)
        if args.flame_out:
            print(f"flame     : {args.flame_out}  (render with "
                  f"flamegraph.pl or speedscope)")
        if args.perfetto_out:
            print(f"perfetto  : {args.perfetto_out}  (open in "
                  f"https://ui.perfetto.dev)")
    if args.json_out:
        write_json(args.json_out, payload)
    record = None
    if _recording(args):
        record = _single_run_record("attribute", args, runner, result,
                                    metrics)
        record.extra["attribution"] = payload["attribution"]
    return _finish_record(args, record)


def _cmd_bottleneck(args) -> int:
    systems = args.systems or all_system_names()
    workloads = args.workloads or sorted(REGISTRY)
    runner = _make_runner(args)
    rows = []
    cells: dict = {}
    for workload in workloads:
        for system in systems:
            result, attr, nodes, report = _attribution_cell(
                runner, system, workload, top=args.top)
            cells.setdefault(result.workload, {})[result.system] = (
                report.to_json_dict())
            cp_share = (report.critical_path.cycles / report.cycles
                        if report.cycles else 0.0)
            top_family = (report.families[0].label if report.families
                          else "-")
            rows.append([
                result.workload, result.system, f"{result.cycles:.0f}",
                report.dominant,
                f"{report.bound_by.get('memory', 0.0):.1%}",
                f"{cp_share:.1%}", top_family])
    if args.json:
        emit_json({"systems": list(systems), "workloads": list(workloads),
                   "cells": cells})
    else:
        print(format_table(
            ["workload", "system", "cycles", "bound_by", "mem_share",
             "cp_share", "top_family"], rows))
    return 0


def _cmd_stats(args) -> int:
    from .analysis import analyze_trace
    from .obs import attribution_record_payload
    runner = _make_runner(args)
    metrics = MetricsRegistry()
    result, attr, _nodes, attr_report = _attribution_cell(
        runner, args.system, args.workload, metrics=metrics)
    metrics.assert_schema()
    # The simulated trace is already cached, so the characterisation and
    # (for vector traces) the static-analyzer summary come for free.
    trace = runner.trace_for(args.system, args.workload)
    tstats = trace.stats()
    analysis = (analyze_trace(trace, name=args.workload).summary
                if trace.vlmax is not None else None)
    payload = result.to_json_dict()
    payload["metrics"] = metrics.snapshot()
    payload["attribution"] = attribution_record_payload(attr, attr_report)
    payload["trace_stats"] = {
        "dynamic_instrs": tstats.dynamic_instrs,
        "vector_instrs": tstats.vector_instrs,
        "scalar_instrs": tstats.scalar_instrs,
        "total_ops": tstats.total_ops,
        "vector_ops": tstats.vector_ops,
        "vi_pct": tstats.vi_pct, "vo_pct": tstats.vo_pct,
        "vpar": tstats.vpar, "prd_pct": tstats.prd_pct,
        "arith_intensity": tstats.arith_intensity,
        "by_category": {cat.name: count
                        for cat, count in tstats.by_category.items()},
    }
    if analysis is not None:
        payload["analysis"] = analysis.to_json()
    payload["self_profile"] = runner.profiler.as_dict()
    if args.json:
        emit_json(payload)
    elif args.csv:
        # Per-vector-instruction ratios divide by the vector-instruction
        # count; scalar cells (vector_instrs == 0) emit "n/a" instead of
        # crashing.
        ilp_rows = [
            ["trace.dynamic_instrs", tstats.dynamic_instrs],
            ["trace.vector_instrs", tstats.vector_instrs],
            ["trace.vpar", tstats.vpar],
            ["trace.ops_per_vinstr",
             (tstats.vector_ops / tstats.vector_instrs
              if tstats.vector_instrs else "n/a")],
            ["analysis.ilp_width",
             analysis.ilp_width if analysis is not None else "n/a"],
        ]
        emit_csv(["metric", "value"],
                 [["sim.system", result.system],
                  ["sim.workload", result.workload],
                  *ilp_rows,
                  *((f"attribution.{key}", value) for key, value
                    in sorted(payload["attribution"]["shares"].items())),
                  *metrics.flat().items()])
    else:
        print(f"system    : {result.system}")
        print(f"workload  : {result.workload}")
        print(f"cycles    : {result.cycles:.0f}")
        print(f"time      : {result.time_ns / 1e3:.1f} us")
        print(f"trace     : {tstats.dynamic_instrs} instrs, "
              f"VI% {tstats.vi_pct:.1f}, VPar {tstats.vpar:.1f}, "
              f"ArInt {tstats.arith_intensity:.2f}")
        if analysis is not None:
            print(f"analysis  : dead_writes={analysis.dead_writes}, "
                  f"live_hwm={analysis.live_high_water}, "
                  f"dep depth={analysis.dep_depth} "
                  f"width={analysis.dep_width}, "
                  f"ilp={analysis.ilp_width:.1f}")
        from .obs.critpath import TAXONOMY_CLASSES
        shares = "  ".join(
            f"{cls}:{attr_report.bound_by.get(cls, 0.0):.1%}"
            for cls in TAXONOMY_CLASSES)
        print(f"bound by  : {attr_report.dominant}   ({shares})")
        rows = list(metrics.flat().items())
        print(format_table(["metric", "value"], rows))
        prof = runner.profiler.merged()
        prof_rows = [[phase, f"{seconds * 1e3:.1f} ms"]
                     for phase, seconds in sorted(prof.items())]
        print()
        print(format_table(["host phase", "wall-clock"], prof_rows))
    record = None
    if _recording(args):
        record = _single_run_record("stats", args, runner, result, metrics)
        record.extra["attribution"] = payload["attribution"]
    return _finish_record(args, record)


def _cmd_history(args) -> int:
    store = RunStore(args.store)
    # The workload/system filters share the trend analytics' helpers, so
    # `repro history --workload vvadd` selects exactly the records a
    # vvadd trend line would be computed over.
    rows_data = filter_history(store, kind=args.kind,
                               workload=args.workload, system=args.system,
                               limit=args.limit)
    if args.json:
        emit_json(rows_data)
        return 0
    if not rows_data:
        filtered = args.kind or args.workload or args.system
        print(f"run store {store.root} is empty"
              + (" for these filters" if filtered else "")
              + " (record one with: repro run SYSTEM WORKLOAD --record)")
        return 0
    rows = [[r["record_id"], r["kind"], r["label"] or "-", r["created"],
             r["git_sha"] + ("*" if r.get("dirty") else ""),
             "tiny" if r.get("tiny") else "full", r.get("fingerprint", "")]
            for r in rows_data]
    print(format_table(
        ["record", "kind", "label", "created", "git", "inputs", "config"],
        rows))
    return 0


def _cmd_diff(args) -> int:
    store = RunStore(args.store)
    try:
        baseline = store.resolve(args.baseline_ref)
        current = store.resolve(args.current_ref)
    except RunStoreError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    diff = diff_records(baseline, current, speedup_budget=args.budget)
    payload = diff.to_json_dict()
    if args.json:
        emit_json(payload)
    else:
        _print_diff(diff)
    if args.json_out:
        write_json(args.json_out, payload)
    return diff.exit_code(strict=args.strict)


def _cmd_scorecard(args) -> int:
    runner = _make_runner(args)
    figures = args.figures or FIGURES
    apps = args.apps or ALL_APPS
    _prefetch(runner, scorecard_pairs(figures, apps))
    card = build_scorecard(runner=runner, figures=figures,
                           apps=apps, tiny=args.tiny)
    payload = card.to_json_dict()
    if args.json:
        emit_json(payload)
    else:
        rows = [[e.figure, e.kernel, e.metric, e.paper, e.measured,
                 "inf" if e.error == float("inf") else f"{e.error:.2f}x",
                 e.grade + ("(dev)" if e.known_deviation else "")]
                for e in card.entries]
        print(format_table(
            ["figure", "kernel", "metric", "paper", "ours", "error",
             "grade"], rows))
        print()
        check_rows = [[c.figure, c.name,
                       "ok" if c.ok
                       else ("FAIL" if c.gate else "FAIL(dev)"), c.detail]
                      for c in card.checks]
        print(format_table(["figure", "shape claim", "verdict", "detail"],
                           check_rows))
        print()
        counts = card.grade_counts()
        grades = "  ".join(f"{g}:{counts[g]}" for g in "ABCF")
        print(f"grades          : {grades}   ((dev) = known deviation, "
              f"not gated)")
        print(f"geomean error   : {card.geomean_error():.2f}x all, "
              f"{card.geomean_error(core_only=True):.2f}x core "
              f"(budget {payload['geomean_error_budget']:.2f}x)")
        print(f"fidelity verdict: {'PASS' if card.passed else 'FAIL'}"
              + (" [tiny inputs - grades not meaningful vs the paper]"
                 if args.tiny else ""))
    if args.record:
        record = make_record(
            "scorecard", label=",".join(card.figures), tiny=args.tiny,
            command="repro scorecard",
            fingerprint_extra=runner.params_override or None)
        record.self_profile = runner.profiler.as_dict()
        record.extra = {"scorecard": payload}
        store = RunStore(args.store)
        record_id = store.append(record)
        print(f"recorded {record_id} -> {store.runs_path}", file=sys.stderr)
    if args.json_out:
        write_json(args.json_out, payload)
    return (0 if card.passed else 1) if args.gate else 0


def _cmd_uprog(args) -> int:
    params = {}
    if args.macro in ("logic",):
        params["op"] = args.op or "xor"
    elif args.macro in ("compare",):
        params["op"] = args.op or "lt"
    elif args.macro in ("minmax",):
        params["op"] = args.op or "min"
    elif args.macro == "div":
        params["op"] = args.op or "divu"
    elif args.macro.startswith("shift"):
        params["op"] = args.op or "sll"
        if args.macro == "shift_scalar":
            params["amount"] = 5
    rom = MacroOpRom(args.factor)
    program = rom.program(args.macro, **params)
    print(disassemble(program))
    print()
    rows = [[n, MacroOpRom(n).cycles(args.macro, **params)]
            for n in (1, 2, 4, 8, 16, 32)]
    print(format_table(["factor", "cycles"], rows))
    return 0


def _cmd_lint(args) -> int:
    factors = args.factor or list(EVE_FACTORS)
    if args.asm is not None:
        try:
            with open(args.asm) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"lint: cannot read {args.asm}: {exc}", file=sys.stderr)
            return 2
        findings = []
        count = 0
        for factor in factors:
            try:
                program = assemble(source, name=f"{args.asm}@n{factor}")
            except MicroProgramError as exc:
                print(f"lint: {args.asm} (n={factor}): {exc}", file=sys.stderr)
                return 2
            findings += lint_program(program, factor)
            count += 1
    else:
        count, findings = lint_rom(factors, macro=args.macro)
        if count == 0:
            print(f"lint: no ROM program named {args.macro!r}", file=sys.stderr)
            return 2
    if args.json:
        emit_json(findings_json(findings, count))
        return 1 if any(f.severity == "error" for f in findings) else 0
    if findings:
        rows = [[f.program, f.index if f.index >= 0 else "-", f.rule,
                 f.severity, f.message] for f in findings]
        print(format_table(["program", "tuple", "rule", "severity", "message"],
                           rows))
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(f"{count} program(s) linted: {errors} error(s), "
          f"{warnings} warning(s)")
    return 1 if errors else 0


def _check_traces(args):
    """(name, trace) pairs for ``repro check``: workloads or a corpus."""
    if args.corpus:
        import glob
        import os
        from .faults.fuzz import load_case, run_case
        from .isa.intrinsics import VectorContext
        paths = sorted(glob.glob(os.path.join(args.corpus, "*.json")))
        if not paths:
            raise ReproError(f"no case JSONs under {args.corpus!r}")
        for path in paths:
            name = os.path.splitext(os.path.basename(path))[0]
            case = load_case(path)
            ctx = VectorContext(case.vlmax, name=name)
            run_case(case, ctx)
            yield name, ctx.finalize_trace()
        return
    for name in (args.workload or sorted(REGISTRY)):
        workload = REGISTRY[name]
        params = dict(workload.tiny_params) if args.tiny else None
        yield name, workload.vector_trace(args.vlmax, params, verify=False,
                                          seed=args.seed)


def _cmd_check(args) -> int:
    from .analysis import analyze_trace
    findings = []
    summaries = {}
    for name, trace in _check_traces(args):
        report = analyze_trace(trace, name=name)
        findings += report.findings
        summaries[name] = report.summary
    if args.json or args.json_out:
        payload = findings_json(findings, len(summaries))
        payload["programs_detail"] = {name: summary.to_json()
                                      for name, summary in summaries.items()}
        if args.json:
            emit_json(payload)
        if args.json_out:
            write_json(args.json_out, payload)
    if not args.json:
        if findings:
            rows = [[f.program, f.index, f.rule, f.severity, f.message]
                    for f in findings]
            print(format_table(
                ["program", "instr", "rule", "severity", "message"], rows))
            print()
        rows = [[name, s.events, s.vector_instrs, s.dead_writes,
                 s.live_high_water, s.dep_edges, s.dep_depth, s.dep_width]
                for name, s in summaries.items()]
        print(format_table(
            ["program", "events", "vector", "dead_writes", "live_hwm",
             "dep_edges", "depth", "width"], rows))
        errors = sum(1 for f in findings if f.severity == "error")
        print(f"{len(summaries)} trace(s) checked: {errors} error(s), "
              f"{len(findings) - errors} warning(s)")
    # CI gates on ANY finding (warnings included), unlike lint.
    return 1 if findings else 0


def _cmd_figure(args) -> int:
    if args.name == "fig2":
        rows = figure2(measured=True)
        print(format_table(
            ["factor", "alus", "add_lat", "mul_lat", "add_tput", "mul_tput"],
            [[r["factor"], r["alus"], r["add_latency_rel"],
              r["mul_latency_rel"], r["add_throughput_rel"],
              r["mul_throughput_rel"]] for r in rows]))
    elif args.name == "table3":
        return _cmd_systems(args)
    elif args.name == "area":
        rows = [[r["system"], r["area_factor"]] for r in area_table()]
        print(format_table(["system", "area_factor_vs_O3"], rows))
    else:
        print(f"unknown figure {args.name!r} (try: fig2, table3, area); the "
              "full evaluation lives in benchmarks/", file=sys.stderr)
        return 2
    return 0


def _cmd_fuzz(args) -> int:
    from .faults.fuzz import FUZZ_WIDTHS, fuzz_many, load_case, replay_case
    widths = tuple(args.n_widths) if args.n_widths else FUZZ_WIDTHS

    if args.replay:
        case = load_case(args.replay)
        failures = replay_case(case, widths)
        if args.json:
            emit_json({"replay": args.replay, "seed": case.seed,
                       "widths": list(widths),
                       "divergences": [{"factor": factor, "divergence": div}
                                       for factor, div in failures]})
        else:
            for factor, div in failures:
                print(f"n={factor}: DIVERGES ({div.get('kind', '?')})")
            verdict = ("OK" if not failures
                       else f"{len(failures)} diverging width(s)")
            print(f"replay {args.replay} (seed {case.seed}, "
                  f"{len(case.ops)} ops) at n in {list(widths)}: {verdict}")
        return 1 if failures else 0

    telemetry = _make_telemetry(args, "fuzz")

    def progress(done: int, total: int, found: int) -> None:
        if telemetry is not None:
            return  # the live renderer owns stderr
        if done % 50 == 0 or done == total:
            print(f"fuzz: {done}/{total} seeds checked, "
                  f"{found} mismatch(es)", file=sys.stderr)

    try:
        mismatches = fuzz_many(args.seeds, master_seed=args.seed,
                               widths=widths, vlmax=args.vlmax,
                               num_ops=args.ops, out_dir=args.out_dir,
                               progress=progress, telemetry=telemetry)
    finally:
        _finalize_telemetry(telemetry)
    if args.json:
        emit_json({"seeds": args.seeds, "master_seed": args.seed,
                   "widths": list(widths),
                   "mismatches": [m.to_json_dict() for m in mismatches]})
    else:
        for mismatch in mismatches:
            kind = (mismatch.divergence or {}).get("kind", "?")
            print(f"seed {mismatch.case.seed} n={mismatch.factor}: "
                  f"{kind} divergence ({len(mismatch.case.ops)}-op repro)")
        verdict = ("OK" if not mismatches
                   else f"{len(mismatches)} mismatch(es)")
        print(f"fuzz: {args.seeds} seed(s) x {len(widths)} width(s): "
              f"{verdict}")
    return 1 if mismatches else 0


def _bucket_sort_key(item):
    bucket = item[0]
    return (0, int(bucket), "") if bucket.isdigit() else (1, 0, bucket)


def _cmd_faults(args) -> int:
    from .faults.campaign import OUTCOMES, run_campaign
    from .faults.fuzz import FUZZ_WIDTHS
    factors = tuple(args.n_widths) if args.n_widths else FUZZ_WIDTHS
    models = None if args.model == "all" else [args.model]
    metrics = MetricsRegistry() if _recording(args) else None
    profiler = SelfProfiler()
    telemetry = _make_telemetry(args, "faults")
    try:
        report = run_campaign(args.count, models=models, factors=factors,
                              seed=args.seed, jobs=args.jobs,
                              profiler=profiler, metrics=metrics,
                              telemetry=(telemetry if telemetry is not None
                                         else NULL_TELEMETRY))
    finally:
        _finalize_telemetry(telemetry)
    payload = report.to_json_dict()
    if args.json:
        emit_json(payload)
    else:
        total = max(1, len(report.outcomes))
        print(f"campaign  : {report.count} injection(s), seed {report.seed}")
        print(f"models    : {', '.join(report.models)}")
        print(f"widths    : n in {list(report.factors)}")
        print(format_table(
            ["outcome", "count", "fraction"],
            [[name, report.counts[name], report.counts[name] / total]
             for name in OUTCOMES]))
        for title, table in (("n", report.by_factor()),
                             ("model", report.by_model()),
                             ("family", report.by_family())):
            rows = [[bucket, cell["injections"], cell["sdc"],
                     cell["sdc_rate"]]
                    for bucket, cell in sorted(table.items(),
                                               key=_bucket_sort_key)]
            print()
            print(format_table([title, "injections", "sdc", "sdc_rate"],
                               rows))
    if args.json_out:
        write_json(args.json_out, payload)
    record = None
    if _recording(args):
        record = make_record(
            "faults", label=f"{args.count}x{args.model}", tiny=False,
            command=f"repro faults --model {args.model} "
                    f"--count {args.count} --seed {args.seed}",
            fingerprint_extra={"faults": {"seed": args.seed,
                                          "model": args.model,
                                          "count": args.count}})
        compact = dict(payload)
        compact.pop("outcomes", None)
        record.extra["campaign"] = compact
        record.metrics = metrics.flat()
        record.self_profile = profiler.as_dict()
    return _finish_record(args, record)


def _cmd_events(args) -> int:
    if args.follow:
        # Tail-mode: stream events as campaigns append them (the service
        # writes each job's events at finalize; a long-running sweep with
        # --events shows up the same way).  Ctrl-C exits via main's
        # KeyboardInterrupt handler (130).
        print(f"following {args.log} (Ctrl-C to stop)...", file=sys.stderr)
        for event in follow_events(args.log, campaign=args.campaign):
            detail = f"  {event.detail}" if event.detail else ""
            print(f"{event.t:9.3f}  {event.event:<17} {event.unit:<28} "
                  f"[{event.worker}]{detail}", flush=True)
        return 0
    events = read_events(args.log, campaign=args.campaign)
    violations = check_conservation(events)
    summaries = campaign_summaries(events)
    shown = events[-args.tail:] if args.tail else events
    if args.json:
        emit_json({"log": args.log, "total": len(events),
                   "campaigns": summaries,
                   "conserved": not violations, "violations": violations,
                   "events": [e.to_json_dict() for e in shown]})
    else:
        rows = [[s["campaign"], s["kind"] or "-", s["units"], s["events"],
                 f"{s['cache']['hits']}/{s['cache']['corrupt']}",
                 len(s["stalled_units"]),
                 "ok" if s["conserved"] else "VIOLATED"]
                for s in summaries]
        print(format_table(
            ["campaign", "kind", "units", "events", "cache hit/corrupt",
             "stalls", "conservation"], rows))
        print()
        for event in shown:
            detail = f"  {event.detail}" if event.detail else ""
            print(f"{event.t:9.3f}  {event.event:<17} {event.unit:<28} "
                  f"[{event.worker}]{detail}")
        if args.tail and len(events) > len(shown):
            print(f"  (showing last {len(shown)} of {len(events)} "
                  f"event(s); --tail 0 for all)")
    if violations:
        for violation in violations:
            print(f"conservation: {violation}", file=sys.stderr)
    if args.check:
        return 1 if violations else 0
    return 0


def _cmd_report(args) -> int:
    store = RunStore(args.store)
    events = read_events(args.log) if os.path.exists(args.log) else []
    size = write_report(args.output, store, events, last=args.last,
                        generated=time.strftime("%Y-%m-%dT%H:%M:%S"))
    records = len(list(store.records()))
    print(f"report: {args.output} ({size} bytes; {records} record(s), "
          f"{len(events)} event(s)) — self-contained, open in any browser")
    return 0


def _cmd_cache(args) -> int:
    stats = cache_stats(args.cache_dir)
    pruned = None
    if args.prune:
        pruned = prune_cache(args.cache_dir,
                             max_bytes=args.max_bytes or 0)
        stats = cache_stats(args.cache_dir)  # post-prune census
    if args.json:
        payload = dict(stats)
        if pruned is not None:
            payload["pruned"] = pruned
        emit_json(payload)
        return 0
    print(f"cache     : {stats['root']}"
          + ("" if stats["exists"] else "  (missing)"))
    for kind in ("trace", "result", "corrupt"):
        entry = stats[kind]
        print(f"{kind:<10}: {entry['count']} entr(y/ies), "
              f"{entry['bytes']} bytes")
    print(f"total     : {stats['total_bytes']} bytes")
    if pruned is not None:
        print(f"pruned    : {pruned['removed']} entr(y/ies), "
              f"{pruned['freed_bytes']} bytes freed "
              f"(budget {pruned['max_bytes']} bytes, "
              f"{pruned['remaining_bytes']} remaining)")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    from .service.server import serve
    cache_root = None if args.no_cache else args.cache_dir
    asyncio.run(serve(
        args.host, args.port, jobs=args.jobs or None,
        max_clients=args.max_clients, store_root=args.store,
        cache_root=cache_root, max_active_jobs=args.max_active_jobs,
        rate=args.rate, burst=args.burst))
    return 0


def _submit_spec(args) -> dict:
    """The JobSpec document a ``repro submit`` invocation describes."""
    spec: dict = {"kind": args.kind, "priority": args.priority,
                  "tiny": args.tiny, "seed": args.seed,
                  "compile": args.compile}
    if args.systems:
        spec["systems"] = list(args.systems)
    if args.workloads:
        spec["workloads"] = list(args.workloads)
    if args.count is not None:
        spec["count"] = args.count
    return spec


def _cmd_submit(args) -> int:
    from .service.client import ServiceClient
    client = ServiceClient(args.host, args.port, client=args.client)
    record = client.submit(_submit_spec(args))
    if not args.wait:
        if args.json:
            emit_json(record)
        else:
            print(f"submitted {record['job_id']} "
                  f"({record['spec']['kind']}, {record['state']}, "
                  f"fingerprint {record['fingerprint']})")
        return 0
    final = client.wait(record["job_id"], timeout=args.timeout)
    if final["state"] != "done":
        error = final.get("error") or "(no error detail)"
        print(f"repro submit: job {final['job_id']} {final['state']}: "
              f"{error}", file=sys.stderr)
        return 1
    payload = client.result(final["job_id"])
    if args.json:
        # Byte-identical to the direct CLI run's --json document minus
        # its wall-clock "cache" block (the CI smoke diffs the two).
        emit_json(payload)
    else:
        print(f"job {final['job_id']} done "
              f"(attempts {final['attempts']}, "
              f"record {final.get('result_record_id') or '-'})")
    return 0


def _cmd_jobs(args) -> int:
    from .service.client import ServiceClient
    client = ServiceClient(args.host, args.port, client=args.client)
    records = client.jobs()
    if args.json:
        emit_json({"jobs": records})
        return 0
    rows = [[r["job_id"], r["spec"]["kind"], r["spec"]["client"],
             r["spec"]["priority"], r["state"], r["attempts"],
             r.get("error") or ""]
            for r in records]
    print(format_table(["job", "kind", "client", "priority", "state",
                        "attempts", "error"], rows))
    status = client.status()
    counters = status.get("counters", {})
    print(f"\nservice: {status.get('active', 0)} active, queue "
          f"{status.get('queue')}, "
          f"{counters.get('cells_simulated', 0)} cell(s) simulated, "
          f"{counters.get('cells_deduped', 0)} deduped, "
          f"{counters.get('cache_hits', 0)} cache hit(s)"
          + (", DRAINING" if status.get("draining") else ""))
    return 0


def _cmd_cancel(args) -> int:
    from .service.client import ServiceClient
    client = ServiceClient(args.host, args.port, client=args.client)
    record = client.cancel(args.job_id)
    print(f"cancel requested for {record['job_id']} "
          f"(state {record['state']})")
    return 0


def _add_jobs_arguments(sub) -> None:
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="simulate (system, workload) cells on N worker "
                          "processes (0 = all CPUs; default: 1, serial)")
    sub.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk trace/result cell cache")
    sub.add_argument("--cache-dir", default=DEFAULT_CACHE_ROOT, metavar="DIR",
                     help=f"cell-cache directory used by the parallel "
                          f"executor (default: {DEFAULT_CACHE_ROOT})")


def _add_record_arguments(sub) -> None:
    sub.add_argument("--record", action="store_true",
                     help="archive this run into the run store")
    sub.add_argument("--baseline", default=None, metavar="REF",
                     help="diff this run against REF (a record id, "
                          "'latest', 'latest~N', or a record JSON file); "
                          "exits non-zero on regression")
    sub.add_argument("--store", default=DEFAULT_ROOT, metavar="DIR",
                     help=f"run-store directory (default: {DEFAULT_ROOT})")


def _add_telemetry_arguments(sub) -> None:
    sub.add_argument("--events", nargs="?", const=DEFAULT_EVENTS_PATH,
                     default=None, metavar="FILE",
                     help="append campaign lifecycle events to a JSONL log "
                          f"(default FILE: {DEFAULT_EVENTS_PATH}; inspect "
                          f"with 'repro events')")
    live = sub.add_mutually_exclusive_group()
    live.add_argument("--progress", action="store_true",
                      help="force the live progress line even when stderr "
                           "is not a TTY (default: auto-detect)")
    live.add_argument("--quiet", action="store_true",
                      help="suppress the live progress display")


def _add_compile_argument(sub) -> None:
    sub.add_argument("--compile", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="run uninstrumented simulations through the "
                          "trace compiler's batched evaluator "
                          "(cycle-identical to the interpreter; "
                          "--no-compile forces the reference path)")


def _add_seed_argument(sub) -> None:
    sub.add_argument("--seed", type=int, default=DEFAULT_SEED, metavar="N",
                     help="workload input-generation seed, folded into "
                          "cache keys and record fingerprints "
                          f"(default: {DEFAULT_SEED})")


def _add_service_arguments(sub) -> None:
    sub.add_argument("--host", default="127.0.0.1",
                     help="service address (default: 127.0.0.1)")
    sub.add_argument("--port", type=int, default=8321,
                     help="service port (default: 8321)")
    sub.add_argument("--client", default=None, metavar="NAME",
                     help="client identity for fair scheduling and rate "
                          "limiting (default: your username)")


def _add_pair_arguments(sub, tiny_help: bool = True) -> None:
    sub.add_argument("system", type=_canonical_system,
                     choices=all_system_names())
    sub.add_argument("workload", type=_canonical_workload,
                     choices=sorted(REGISTRY))
    if tiny_help:
        sub.add_argument("--tiny", action="store_true",
                         help="use the test-sized problem inputs")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EVE (HPCA 2023) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list Table III systems")
    sub.add_parser("workloads", help="list Table IV workloads")

    run = sub.add_parser("run", help="simulate one system x workload")
    _add_pair_arguments(run)
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write the metrics-registry snapshot as JSON "
                          "('-' for stdout)")
    _add_compile_argument(run)
    _add_seed_argument(run)
    _add_record_arguments(run)

    compare = sub.add_parser("compare", help="one workload on every system")
    compare.add_argument("workload", type=_canonical_workload,
                         choices=sorted(REGISTRY))
    compare.add_argument("--tiny", action="store_true",
                         help="use the test-sized problem inputs")
    compare.add_argument("--json", action="store_true",
                         help="machine-readable output (per-system SimResult "
                              "fields + stall breakdown)")
    compare.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write per-system metrics snapshots as JSON")
    _add_compile_argument(compare)
    _add_seed_argument(compare)
    _add_jobs_arguments(compare)
    _add_record_arguments(compare)
    _add_telemetry_arguments(compare)

    sweep = sub.add_parser(
        "sweep", help="simulate a systems x workloads cross-product, "
                      "optionally fanned out over worker processes")
    sweep.add_argument("--systems", nargs="+", type=_canonical_system,
                       choices=all_system_names(), default=None,
                       metavar="SYSTEM",
                       help="restrict to these systems (default: all)")
    sweep.add_argument("--workloads", nargs="+", type=_canonical_workload,
                       choices=sorted(REGISTRY), default=None,
                       metavar="WORKLOAD",
                       help="restrict to these workloads (default: all)")
    sweep.add_argument("--tiny", action="store_true",
                       help="use the test-sized problem inputs")
    sweep.add_argument("--json", action="store_true",
                       help="machine-readable per-cell cycles/time and "
                            "speedups (deterministic: no wall-clock)")
    _add_compile_argument(sweep)
    _add_seed_argument(sweep)
    _add_jobs_arguments(sweep)
    _add_record_arguments(sweep)
    _add_telemetry_arguments(sweep)

    trace = sub.add_parser(
        "trace", help="export a Perfetto/Chrome timeline trace of one run")
    _add_pair_arguments(trace)
    trace.add_argument("-o", "--output", default="trace.json", metavar="FILE",
                       help="trace file to write (default: trace.json)")

    stats = sub.add_parser(
        "stats", help="simulate with metrics enabled and dump the registry")
    _add_pair_arguments(stats)
    fmt = stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="full snapshot (histograms included) as JSON")
    fmt.add_argument("--csv", action="store_true",
                     help="flattened metric,value rows as CSV")
    _add_record_arguments(stats)

    attribute = sub.add_parser(
        "attribute", help="cycle-attribution report for one run: "
                          "per-instruction accounting (conservation-"
                          "checked), timed critical path, and ranked "
                          "bottlenecks")
    _add_pair_arguments(attribute)
    attribute.add_argument("--top", type=int, default=10, metavar="K",
                           help="instructions / families to rank "
                                "(default: 10)")
    attribute.add_argument("--flame-out", default=None, metavar="FILE",
                           help="write a folded-stack flamegraph "
                                "(workload;macro;opcode;bucket lines)")
    attribute.add_argument("--perfetto-out", default=None, metavar="FILE",
                           help="write cumulative stall-bucket counter "
                                "tracks as Chrome trace-event JSON")
    attribute.add_argument("--json", action="store_true",
                           help="machine-readable report (conservation + "
                                "taxonomy + critical path + rankings)")
    attribute.add_argument("--json-out", default=None, metavar="FILE",
                           help="also write the JSON report to FILE")
    _add_seed_argument(attribute)
    _add_record_arguments(attribute)

    bottleneck = sub.add_parser(
        "bottleneck", help="bound-by summary across a systems x "
                           "workloads grid (conservation-checked)")
    bottleneck.add_argument("--systems", nargs="+", type=_canonical_system,
                            choices=all_system_names(), default=None,
                            metavar="SYSTEM",
                            help="restrict to these systems (default: all)")
    bottleneck.add_argument("--workloads", nargs="+",
                            type=_canonical_workload,
                            choices=sorted(REGISTRY), default=None,
                            metavar="WORKLOAD",
                            help="restrict to these workloads "
                                 "(default: all)")
    bottleneck.add_argument("--tiny", action="store_true",
                            help="use the test-sized problem inputs")
    bottleneck.add_argument("--top", type=int, default=5, metavar="K",
                            help="rank depth per cell in --json output "
                                 "(default: 5)")
    bottleneck.add_argument("--json", action="store_true",
                            help="machine-readable per-cell reports")
    _add_seed_argument(bottleneck)

    history = sub.add_parser(
        "history", help="list the archived run records")
    history.add_argument("-n", "--limit", type=int, default=None,
                         help="show only the N most recent records")
    history.add_argument("--kind", default=None,
                         help="restrict to one record kind "
                              "(run/compare/stats/bench/scorecard)")
    history.add_argument("--workload", default=None, metavar="WORKLOAD",
                         type=_canonical_workload, choices=sorted(REGISTRY),
                         help="only records carrying results or speedups "
                              "for this workload")
    history.add_argument("--system", default=None, metavar="SYSTEM",
                         type=_canonical_system, choices=all_system_names(),
                         help="only records carrying results or speedups "
                              "for this system")
    history.add_argument("--json", action="store_true",
                         help="machine-readable record summaries")
    history.add_argument("--store", default=DEFAULT_ROOT, metavar="DIR",
                         help=f"run-store directory (default: {DEFAULT_ROOT})")

    diff = sub.add_parser(
        "diff", help="compare two run records (exits non-zero on a gated "
                     "regression)")
    diff.add_argument("baseline_ref", metavar="BASELINE",
                      help="record id, 'latest', 'latest~N', or a record "
                           "JSON file (e.g. the committed golden baseline)")
    diff.add_argument("current_ref", metavar="CURRENT", nargs="?",
                      default="latest", help="record to compare against "
                                             "BASELINE (default: latest)")
    diff.add_argument("--budget", type=float,
                      default=DEFAULT_SPEEDUP_BUDGET, metavar="FRAC",
                      help="relative speedup loss tolerated before the "
                           "direction-aware gate calls a regression "
                           f"(default: {DEFAULT_SPEEDUP_BUDGET})")
    diff.add_argument("--strict", action="store_true",
                      help="fail on ANY gated change (golden-file "
                           "discipline), not just regressions")
    diff.add_argument("--json", action="store_true",
                      help="machine-readable diff report")
    diff.add_argument("--json-out", default=None, metavar="FILE",
                      help="also write the JSON report to FILE")
    diff.add_argument("--store", default=DEFAULT_ROOT, metavar="DIR",
                      help=f"run-store directory (default: {DEFAULT_ROOT})")

    scorecard = sub.add_parser(
        "scorecard", help="grade the reproduction against the paper's "
                          "published numbers")
    scorecard.add_argument("--tiny", action="store_true",
                           help="use the test-sized problem inputs (fast "
                                "smoke; grades are not paper-meaningful)")
    scorecard.add_argument("--figures", nargs="+", choices=list(FIGURES),
                           default=None, metavar="FIG",
                           help=f"restrict to some of {', '.join(FIGURES)}")
    scorecard.add_argument("--apps", nargs="+", default=None,
                           type=_canonical_workload,
                           choices=sorted(ALL_APPS), metavar="APP",
                           help="restrict to some Table IV kernels")
    scorecard.add_argument("--json", action="store_true",
                           help="machine-readable scorecard")
    scorecard.add_argument("--json-out", default=None, metavar="FILE",
                           help="also write the JSON scorecard to FILE")
    scorecard.add_argument("--record", action="store_true",
                           help="archive the scorecard into the run store")
    scorecard.add_argument("--gate", action="store_true",
                           help="exit non-zero when the fidelity verdict "
                                "is FAIL")
    scorecard.add_argument("--store", default=DEFAULT_ROOT, metavar="DIR",
                           help=f"run-store directory "
                                f"(default: {DEFAULT_ROOT})")
    _add_jobs_arguments(scorecard)

    uprog = sub.add_parser("uprog", help="show a macro-op micro-program")
    uprog.add_argument("macro")
    uprog.add_argument("--factor", type=int, default=8,
                       choices=list(EVE_FACTORS))
    uprog.add_argument("--op", default=None)

    lint = sub.add_parser(
        "lint", help="statically verify micro-programs (CFG + dataflow)")
    lint.add_argument("--factor", type=int, action="append",
                      choices=list(EVE_FACTORS), default=None,
                      help="parallelization factor(s) to lint for "
                           "(repeatable; default: all)")
    lint.add_argument("--macro", default=None,
                      help="restrict the ROM sweep to one macro-operation")
    lint.add_argument("--asm", default=None, metavar="FILE",
                      help="lint an assembly listing instead of the ROM")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings (same schema as "
                           "'repro check --json')")

    check = sub.add_parser(
        "check", help="statically analyze vector traces (def-use, memory "
                      "footprint, hazards, dependence graph); exits "
                      "non-zero on any finding")
    check.add_argument("--workload", nargs="+", type=_canonical_workload,
                       choices=sorted(REGISTRY), default=None,
                       metavar="WORKLOAD",
                       help="restrict to these workloads (default: all)")
    check.add_argument("--vlmax", type=int, default=2048, metavar="VL",
                       help="hardware vector length for the generated "
                            "traces (default: 2048)")
    check.add_argument("--tiny", action="store_true",
                       help="use the test-sized problem inputs")
    check.add_argument("--corpus", default=None, metavar="DIR",
                       help="check saved fuzz-case JSONs under DIR instead "
                            "of workload traces")
    check.add_argument("--json", action="store_true",
                       help="machine-readable findings + per-trace "
                            "analyzer summaries")
    check.add_argument("--json-out", default=None, metavar="FILE",
                       help="also write the JSON report to FILE")
    _add_seed_argument(check)

    figure = sub.add_parser("figure", help="regenerate a static figure")
    figure.add_argument("name")

    fuzz = sub.add_parser(
        "fuzz", help="differentially fuzz the micro-programmed engine "
                     "against the numpy oracle at every segment width")
    fuzz.add_argument("--seeds", type=int, default=200, metavar="N",
                      help="number of generated cases (default: 200)")
    fuzz.add_argument("--seed", type=int, default=0, metavar="N",
                      help="master seed the per-case seeds derive from "
                           "(default: 0)")
    fuzz.add_argument("--n-widths", type=int, nargs="+", default=None,
                      choices=list(EVE_FACTORS), metavar="N",
                      help="segment widths to check (default: all six)")
    fuzz.add_argument("--vlmax", type=int, default=None, metavar="VL",
                      help="fix the hardware vector length (default: vary "
                           "per case)")
    fuzz.add_argument("--ops", type=int, default=12, metavar="N",
                      help="operations per generated case (default: 12)")
    fuzz.add_argument("--replay", default=None, metavar="FILE",
                      help="replay one saved case/mismatch JSON instead of "
                           "generating new cases")
    fuzz.add_argument("--out-dir", default=None, metavar="DIR",
                      help="write shrunk mismatch repros as replayable "
                           "JSON under DIR")
    fuzz.add_argument("--json", action="store_true",
                      help="machine-readable mismatch report")
    _add_telemetry_arguments(fuzz)

    faults = sub.add_parser(
        "faults", help="run a seeded fault-injection campaign and "
                       "classify outcomes (masked/detected/SDC)")
    faults.add_argument("--count", type=int, default=100, metavar="N",
                        help="number of injections (default: 100)")
    faults.add_argument("--model", default="all",
                        choices=list(FAULT_MODELS) + ["all"],
                        help="fault model to inject (default: round-robin "
                             "over all models)")
    faults.add_argument("--seed", type=int, default=0, metavar="N",
                        help="campaign seed; fixes every case and "
                             "injection site (default: 0)")
    faults.add_argument("--n-widths", type=int, nargs="+", default=None,
                        choices=list(EVE_FACTORS), metavar="N",
                        help="segment widths to round-robin over "
                             "(default: all six)")
    faults.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan injections out over N worker processes "
                             "(default: 1, serial)")
    faults.add_argument("--json", action="store_true",
                        help="machine-readable campaign report (includes "
                             "every classified outcome)")
    faults.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    _add_record_arguments(faults)
    _add_telemetry_arguments(faults)

    events = sub.add_parser(
        "events", help="inspect a campaign event log (conservation check, "
                       "per-campaign rollups, raw tail)")
    events.add_argument("--log", default=DEFAULT_EVENTS_PATH, metavar="FILE",
                        help="event log to read "
                             f"(default: {DEFAULT_EVENTS_PATH})")
    events.add_argument("--tail", type=int, default=None, metavar="N",
                        help="show only the last N events "
                             "(default: all of them)")
    events.add_argument("--campaign", default=None, metavar="ID",
                        help="restrict to one campaign id")
    events.add_argument("--json", action="store_true",
                        help="machine-readable events + campaign rollups")
    events.add_argument("--check", action="store_true",
                        help="exit non-zero when any unit violates the "
                             "exactly-one-terminal-event invariant")
    events.add_argument("--follow", action="store_true",
                        help="stream events as they are appended "
                             "(tail -f mode; Ctrl-C to stop)")

    report = sub.add_parser(
        "report", help="render the self-contained offline HTML dashboard "
                       "from the run store and event log")
    report.add_argument("-o", "--output", default="report.html",
                        metavar="FILE",
                        help="HTML file to write (default: report.html)")
    report.add_argument("--log", default=DEFAULT_EVENTS_PATH, metavar="FILE",
                        help="event log to include, if present "
                             f"(default: {DEFAULT_EVENTS_PATH})")
    report.add_argument("--last", type=int, default=20, metavar="N",
                        help="records per trend line (default: 20)")
    report.add_argument("--store", default=DEFAULT_ROOT, metavar="DIR",
                        help=f"run-store directory (default: {DEFAULT_ROOT})")

    cache = sub.add_parser(
        "cache", help="inspect or prune the on-disk cell cache")
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_ROOT,
                       metavar="DIR",
                       help=f"cell-cache directory "
                            f"(default: {DEFAULT_CACHE_ROOT})")
    cache.add_argument("--stats", action="store_true",
                       help="print the cache census (the default action)")
    cache.add_argument("--prune", action="store_true",
                       help="evict least-recently-used entries until the "
                            "cache fits --max-bytes (default budget: 0, "
                            "i.e. remove everything; quarantined *.corrupt "
                            "files are never pruned)")
    cache.add_argument("--max-bytes", type=int, default=None, metavar="N",
                       help="byte budget for --prune (default: 0)")
    cache.add_argument("--json", action="store_true",
                       help="machine-readable census (+ prune summary)")

    serve = sub.add_parser(
        "serve", help="run the multi-tenant simulation job service "
                      "(submit jobs with 'repro submit'; SIGTERM drains "
                      "gracefully)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="TCP port, 0 picks a free one (default: 8321)")
    serve.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="simulation worker processes "
                            "(0 = all CPUs; default: 0)")
    serve.add_argument("--max-clients", type=int, default=64, metavar="N",
                       help="concurrent connection cap (default: 64)")
    serve.add_argument("--max-active-jobs", type=int, default=4,
                       metavar="N",
                       help="jobs running concurrently; the rest queue "
                            "(default: 4)")
    serve.add_argument("--rate", type=float, default=20.0, metavar="R",
                       help="per-client sustained requests/second "
                            "(default: 20)")
    serve.add_argument("--burst", type=int, default=40, metavar="N",
                       help="per-client token-bucket burst (default: 40)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk cell cache")
    serve.add_argument("--cache-dir", default=DEFAULT_CACHE_ROOT,
                       metavar="DIR",
                       help=f"cell-cache directory "
                            f"(default: {DEFAULT_CACHE_ROOT})")
    serve.add_argument("--store", default=DEFAULT_ROOT, metavar="DIR",
                       help="run-store directory holding the job journal "
                            f"and event log (default: {DEFAULT_ROOT})")

    submit = sub.add_parser(
        "submit", help="submit a job to a running 'repro serve' instance")
    submit.add_argument("kind", choices=["sweep", "compare", "fuzz",
                                         "faults"],
                        help="experiment kind to run remotely")
    submit.add_argument("--systems", nargs="+", type=_canonical_system,
                        choices=all_system_names(), default=None,
                        metavar="SYSTEM",
                        help="restrict a sweep to these systems "
                             "(default: all)")
    submit.add_argument("--workloads", nargs="+", type=_canonical_workload,
                        choices=sorted(REGISTRY), default=None,
                        metavar="WORKLOAD",
                        help="sweep workloads / the compare workload "
                             "(default: all; compare requires exactly one)")
    submit.add_argument("--tiny", action="store_true",
                        help="use the test-sized problem inputs")
    submit.add_argument("--count", type=int, default=None, metavar="N",
                        help="seeds (fuzz) or injections (faults)")
    submit.add_argument("--priority", default="normal",
                        choices=["high", "normal", "low"],
                        help="queue lane (default: normal)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print its "
                             "result")
    submit.add_argument("--timeout", type=float, default=600.0,
                        metavar="S",
                        help="--wait deadline in seconds (default: 600)")
    submit.add_argument("--json", action="store_true",
                        help="machine-readable job record (or, with "
                             "--wait, the result payload)")
    _add_compile_argument(submit)
    _add_seed_argument(submit)
    _add_service_arguments(submit)

    jobs = sub.add_parser(
        "jobs", help="list the service's jobs and queue counters")
    jobs.add_argument("--json", action="store_true",
                      help="machine-readable job records")
    _add_service_arguments(jobs)

    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running service job")
    cancel.add_argument("job_id", metavar="JOB",
                        help="job id from 'repro submit' / 'repro jobs'")
    _add_service_arguments(cancel)
    return parser


_COMMANDS = {
    "systems": _cmd_systems,
    "workloads": _cmd_workloads,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "attribute": _cmd_attribute,
    "bottleneck": _cmd_bottleneck,
    "history": _cmd_history,
    "diff": _cmd_diff,
    "scorecard": _cmd_scorecard,
    "uprog": _cmd_uprog,
    "lint": _cmd_lint,
    "check": _cmd_check,
    "figure": _cmd_figure,
    "fuzz": _cmd_fuzz,
    "faults": _cmd_faults,
    "events": _cmd_events,
    "report": _cmd_report,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "cancel": _cmd_cancel,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        # Library errors (bad workload params, malformed records, broken
        # replay files, ...) are user-facing diagnostics, not tracebacks.
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2
