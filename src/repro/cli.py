"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``systems``
    List the Table III systems with their derived parameters.
``workloads``
    List the Table IV workloads and their (scaled) default inputs.
``run SYSTEM WORKLOAD``
    Simulate one (system, workload) pair and print cycles, time, and the
    execution breakdown.  ``--metrics-out FILE`` also captures the full
    metrics-registry snapshot as JSON.
``compare WORKLOAD``
    Run a workload on every system and print the speedup column.
    ``--json`` emits a machine-readable report (per-system SimResult
    fields + stall breakdown + the simulator's own phase wall-clock);
    ``--metrics-out FILE`` captures per-system registry snapshots.
``trace SYSTEM WORKLOAD -o FILE``
    Simulate with the timeline tracer enabled and export Chrome
    trace-event JSON (load it at https://ui.perfetto.dev): one track per
    unit/structure (VSU, VMU, DTU, VRU, DRAM, caches, MSHRs, ...).
``stats SYSTEM WORKLOAD``
    Simulate with the metrics registry enabled and print every counter /
    gauge / histogram (``--json`` or ``--csv`` for machines).
``uprog MACRO``
    Print the micro-program for a macro-operation (disassembled) and its
    cycle count per parallelization factor.
``lint``
    Statically verify micro-programs (CFG + dataflow analysis): every ROM
    program for every parallelization factor by default, or an assembly
    listing via ``--asm``.  Exits non-zero when errors are found.
``figure NAME``
    Regenerate a figure/table (fig1, fig2, table3, area).

System and workload names are matched case-insensitively (``o3+eve-4``
works), and ``run`` / ``trace`` / ``stats`` accept ``--tiny`` to use the
test-sized problem inputs.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import List, Optional

from . import __version__
from .config import all_system_names
from .errors import MicroProgramError
from .experiments import ExperimentRunner, format_table
from .experiments.figures import area_table, figure2, table3
from .obs import MetricsRegistry, SpanTracer
from .uops import MacroOpRom, assemble, disassemble, lint_program, lint_rom
from .workloads import REGISTRY

EVE_FACTORS = (1, 2, 4, 8, 16, 32)


def _canonical_system(name: str) -> str:
    """Case-insensitive system-name lookup (``o3+eve-4`` → ``O3+EVE-4``)."""
    by_lower = {known.lower(): known for known in all_system_names()}
    return by_lower.get(name.lower(), name)


def _canonical_workload(name: str) -> str:
    by_lower = {known.lower(): known for known in REGISTRY}
    return by_lower.get(name.lower(), name)


def _make_runner(args) -> ExperimentRunner:
    override = None
    if getattr(args, "tiny", False):
        override = {name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}
    return ExperimentRunner(params_override=override)


def _write_json(path: str, payload: dict) -> None:
    if path == "-":
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)


def _cmd_systems(_args) -> int:
    rows = [[r["system"], r["l2_kb"], r["hardware_vl"], r["vlmax"],
             r["cycle_time_ns"]] for r in table3()]
    print(format_table(
        ["system", "L2_KB", "hw_VL", "trace_VLMAX", "cycle_ns"], rows))
    return 0


def _cmd_workloads(_args) -> int:
    rows = [[wl.name, wl.suite, str(wl.params)]
            for wl in sorted(REGISTRY.values(), key=lambda w: w.name)]
    print(format_table(["workload", "suite", "default params"], rows))
    return 0


def _cmd_run(args) -> int:
    runner = _make_runner(args)
    metrics = MetricsRegistry() if args.metrics_out else None
    result = runner.run(args.system, args.workload, metrics=metrics)
    print(f"system    : {result.system}")
    print(f"workload  : {result.workload}")
    print(f"cycles    : {result.cycles:.0f}")
    print(f"time      : {result.time_ns / 1e3:.1f} us")
    if result.breakdown is not None:
        rows = [[bucket, value, value / result.cycles]
                for bucket, value in result.breakdown.as_dict().items()
                if value > 0]
        print(format_table(["bucket", "cycles", "fraction"], rows))
    if args.metrics_out:
        _write_json(args.metrics_out, {
            "system": result.system,
            "workload": result.workload,
            "metrics": metrics.snapshot(),
            "self_profile": runner.profiler.as_dict(),
        })
    return 0


def _cmd_compare(args) -> int:
    runner = _make_runner(args)
    base = runner.run("IO", args.workload)
    per_system = {}
    metrics_out = {}
    rows = []
    for system in all_system_names():
        metrics = MetricsRegistry() if args.metrics_out else None
        result = runner.run(system, args.workload, metrics=metrics)
        rows.append([system, result.cycles, result.time_ns / 1e3,
                     base.time_ns / result.time_ns])
        entry = result.to_json_dict()
        entry.pop("metrics", None)
        entry["speedup_vs_IO"] = base.time_ns / result.time_ns
        per_system[system] = entry
        if metrics is not None:
            metrics_out[system] = metrics.snapshot()
    if args.json:
        json.dump({
            "workload": args.workload,
            "baseline": "IO",
            "systems": per_system,
            "self_profile": runner.profiler.as_dict(),
        }, sys.stdout, indent=2)
        print()
    else:
        print(format_table(
            ["system", "cycles", "time_us", "speedup_vs_IO"], rows))
    if args.metrics_out:
        _write_json(args.metrics_out, {
            "workload": args.workload,
            "metrics": metrics_out,
            "self_profile": runner.profiler.as_dict(),
        })
    return 0


def _cmd_trace(args) -> int:
    runner = _make_runner(args)
    tracer = SpanTracer(process=f"repro:{args.system}:{args.workload}")
    result = runner.run(args.system, args.workload, tracer=tracer)
    with runner.profiler.phase("report"):
        tracer.export(args.output)
    tracks = ", ".join(tracer.track_names())
    print(f"system    : {result.system}")
    print(f"workload  : {result.workload}")
    print(f"cycles    : {result.cycles:.0f}")
    print(f"events    : {tracer.num_events}")
    print(f"tracks    : {tracks}")
    print(f"trace     : {args.output}  (open in https://ui.perfetto.dev)")
    return 0


def _cmd_stats(args) -> int:
    runner = _make_runner(args)
    metrics = MetricsRegistry()
    result = runner.run(args.system, args.workload, metrics=metrics)
    payload = result.to_json_dict()
    payload["metrics"] = metrics.snapshot()
    payload["self_profile"] = runner.profiler.as_dict()
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    elif args.csv:
        writer = csv.writer(sys.stdout)
        writer.writerow(["metric", "value"])
        writer.writerow(["sim.system", result.system])
        writer.writerow(["sim.workload", result.workload])
        for name, value in metrics.flat().items():
            writer.writerow([name, value])
    else:
        print(f"system    : {result.system}")
        print(f"workload  : {result.workload}")
        print(f"cycles    : {result.cycles:.0f}")
        print(f"time      : {result.time_ns / 1e3:.1f} us")
        rows = list(metrics.flat().items())
        print(format_table(["metric", "value"], rows))
        prof = runner.profiler.merged()
        prof_rows = [[phase, f"{seconds * 1e3:.1f} ms"]
                     for phase, seconds in sorted(prof.items())]
        print()
        print(format_table(["host phase", "wall-clock"], prof_rows))
    return 0


def _cmd_uprog(args) -> int:
    params = {}
    if args.macro in ("logic",):
        params["op"] = args.op or "xor"
    elif args.macro in ("compare",):
        params["op"] = args.op or "lt"
    elif args.macro in ("minmax",):
        params["op"] = args.op or "min"
    elif args.macro == "div":
        params["op"] = args.op or "divu"
    elif args.macro.startswith("shift"):
        params["op"] = args.op or "sll"
        if args.macro == "shift_scalar":
            params["amount"] = 5
    rom = MacroOpRom(args.factor)
    program = rom.program(args.macro, **params)
    print(disassemble(program))
    print()
    rows = [[n, MacroOpRom(n).cycles(args.macro, **params)]
            for n in (1, 2, 4, 8, 16, 32)]
    print(format_table(["factor", "cycles"], rows))
    return 0


def _cmd_lint(args) -> int:
    factors = args.factor or list(EVE_FACTORS)
    if args.asm is not None:
        try:
            with open(args.asm) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"lint: cannot read {args.asm}: {exc}", file=sys.stderr)
            return 2
        findings = []
        count = 0
        for factor in factors:
            try:
                program = assemble(source, name=f"{args.asm}@n{factor}")
            except MicroProgramError as exc:
                print(f"lint: {args.asm} (n={factor}): {exc}", file=sys.stderr)
                return 2
            findings += lint_program(program, factor)
            count += 1
    else:
        count, findings = lint_rom(factors, macro=args.macro)
        if count == 0:
            print(f"lint: no ROM program named {args.macro!r}", file=sys.stderr)
            return 2
    if findings:
        rows = [[f.program, f.index if f.index >= 0 else "-", f.rule,
                 f.severity, f.message] for f in findings]
        print(format_table(["program", "tuple", "rule", "severity", "message"],
                           rows))
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(f"{count} program(s) linted: {errors} error(s), "
          f"{warnings} warning(s)")
    return 1 if errors else 0


def _cmd_figure(args) -> int:
    if args.name == "fig2":
        rows = figure2(measured=True)
        print(format_table(
            ["factor", "alus", "add_lat", "mul_lat", "add_tput", "mul_tput"],
            [[r["factor"], r["alus"], r["add_latency_rel"],
              r["mul_latency_rel"], r["add_throughput_rel"],
              r["mul_throughput_rel"]] for r in rows]))
    elif args.name == "table3":
        return _cmd_systems(args)
    elif args.name == "area":
        rows = [[r["system"], r["area_factor"]] for r in area_table()]
        print(format_table(["system", "area_factor_vs_O3"], rows))
    else:
        print(f"unknown figure {args.name!r} (try: fig2, table3, area); the "
              "full evaluation lives in benchmarks/", file=sys.stderr)
        return 2
    return 0


def _add_pair_arguments(sub, tiny_help: bool = True) -> None:
    sub.add_argument("system", type=_canonical_system,
                     choices=all_system_names())
    sub.add_argument("workload", type=_canonical_workload,
                     choices=sorted(REGISTRY))
    if tiny_help:
        sub.add_argument("--tiny", action="store_true",
                         help="use the test-sized problem inputs")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EVE (HPCA 2023) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list Table III systems")
    sub.add_parser("workloads", help="list Table IV workloads")

    run = sub.add_parser("run", help="simulate one system x workload")
    _add_pair_arguments(run)
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write the metrics-registry snapshot as JSON "
                          "('-' for stdout)")

    compare = sub.add_parser("compare", help="one workload on every system")
    compare.add_argument("workload", type=_canonical_workload,
                         choices=sorted(REGISTRY))
    compare.add_argument("--tiny", action="store_true",
                         help="use the test-sized problem inputs")
    compare.add_argument("--json", action="store_true",
                         help="machine-readable output (per-system SimResult "
                              "fields + stall breakdown)")
    compare.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write per-system metrics snapshots as JSON")

    trace = sub.add_parser(
        "trace", help="export a Perfetto/Chrome timeline trace of one run")
    _add_pair_arguments(trace)
    trace.add_argument("-o", "--output", default="trace.json", metavar="FILE",
                       help="trace file to write (default: trace.json)")

    stats = sub.add_parser(
        "stats", help="simulate with metrics enabled and dump the registry")
    _add_pair_arguments(stats)
    fmt = stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="full snapshot (histograms included) as JSON")
    fmt.add_argument("--csv", action="store_true",
                     help="flattened metric,value rows as CSV")

    uprog = sub.add_parser("uprog", help="show a macro-op micro-program")
    uprog.add_argument("macro")
    uprog.add_argument("--factor", type=int, default=8,
                       choices=list(EVE_FACTORS))
    uprog.add_argument("--op", default=None)

    lint = sub.add_parser(
        "lint", help="statically verify micro-programs (CFG + dataflow)")
    lint.add_argument("--factor", type=int, action="append",
                      choices=list(EVE_FACTORS), default=None,
                      help="parallelization factor(s) to lint for "
                           "(repeatable; default: all)")
    lint.add_argument("--macro", default=None,
                      help="restrict the ROM sweep to one macro-operation")
    lint.add_argument("--asm", default=None, metavar="FILE",
                      help="lint an assembly listing instead of the ROM")

    figure = sub.add_parser("figure", help="regenerate a static figure")
    figure.add_argument("name")
    return parser


_COMMANDS = {
    "systems": _cmd_systems,
    "workloads": _cmd_workloads,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "uprog": _cmd_uprog,
    "lint": _cmd_lint,
    "figure": _cmd_figure,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
