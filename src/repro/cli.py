"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``systems``
    List the Table III systems with their derived parameters.
``workloads``
    List the Table IV workloads and their (scaled) default inputs.
``run SYSTEM WORKLOAD``
    Simulate one (system, workload) pair and print cycles, time, and the
    execution breakdown.
``compare WORKLOAD``
    Run a workload on every system and print the speedup column.
``uprog MACRO``
    Print the micro-program for a macro-operation (disassembled) and its
    cycle count per parallelization factor.
``lint``
    Statically verify micro-programs (CFG + dataflow analysis): every ROM
    program for every parallelization factor by default, or an assembly
    listing via ``--asm``.  Exits non-zero when errors are found.
``figure NAME``
    Regenerate a figure/table (fig1, fig2, table3, area).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import all_system_names
from .errors import MicroProgramError
from .experiments import ExperimentRunner, format_table
from .experiments.figures import area_table, figure2, table3
from .uops import MacroOpRom, assemble, disassemble, lint_program, lint_rom
from .workloads import REGISTRY

EVE_FACTORS = (1, 2, 4, 8, 16, 32)


def _cmd_systems(_args) -> int:
    rows = [[r["system"], r["l2_kb"], r["hardware_vl"], r["vlmax"],
             r["cycle_time_ns"]] for r in table3()]
    print(format_table(
        ["system", "L2_KB", "hw_VL", "trace_VLMAX", "cycle_ns"], rows))
    return 0


def _cmd_workloads(_args) -> int:
    rows = [[wl.name, wl.suite, str(wl.params)]
            for wl in sorted(REGISTRY.values(), key=lambda w: w.name)]
    print(format_table(["workload", "suite", "default params"], rows))
    return 0


def _cmd_run(args) -> int:
    runner = ExperimentRunner()
    result = runner.run(args.system, args.workload)
    print(f"system    : {result.system}")
    print(f"workload  : {result.workload}")
    print(f"cycles    : {result.cycles:.0f}")
    print(f"time      : {result.time_ns / 1e3:.1f} us")
    if result.breakdown is not None:
        rows = [[bucket, value, value / result.cycles]
                for bucket, value in result.breakdown.as_dict().items()
                if value > 0]
        print(format_table(["bucket", "cycles", "fraction"], rows))
    return 0


def _cmd_compare(args) -> int:
    runner = ExperimentRunner()
    base = runner.run("IO", args.workload)
    rows = []
    for system in all_system_names():
        result = runner.run(system, args.workload)
        rows.append([system, result.cycles, result.time_ns / 1e3,
                     base.time_ns / result.time_ns])
    print(format_table(["system", "cycles", "time_us", "speedup_vs_IO"], rows))
    return 0


def _cmd_uprog(args) -> int:
    params = {}
    if args.macro in ("logic",):
        params["op"] = args.op or "xor"
    elif args.macro in ("compare",):
        params["op"] = args.op or "lt"
    elif args.macro in ("minmax",):
        params["op"] = args.op or "min"
    elif args.macro == "div":
        params["op"] = args.op or "divu"
    elif args.macro.startswith("shift"):
        params["op"] = args.op or "sll"
        if args.macro == "shift_scalar":
            params["amount"] = 5
    rom = MacroOpRom(args.factor)
    program = rom.program(args.macro, **params)
    print(disassemble(program))
    print()
    rows = [[n, MacroOpRom(n).cycles(args.macro, **params)]
            for n in (1, 2, 4, 8, 16, 32)]
    print(format_table(["factor", "cycles"], rows))
    return 0


def _cmd_lint(args) -> int:
    factors = args.factor or list(EVE_FACTORS)
    if args.asm is not None:
        try:
            with open(args.asm) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"lint: cannot read {args.asm}: {exc}", file=sys.stderr)
            return 2
        findings = []
        count = 0
        for factor in factors:
            try:
                program = assemble(source, name=f"{args.asm}@n{factor}")
            except MicroProgramError as exc:
                print(f"lint: {args.asm} (n={factor}): {exc}", file=sys.stderr)
                return 2
            findings += lint_program(program, factor)
            count += 1
    else:
        count, findings = lint_rom(factors, macro=args.macro)
        if count == 0:
            print(f"lint: no ROM program named {args.macro!r}", file=sys.stderr)
            return 2
    if findings:
        rows = [[f.program, f.index if f.index >= 0 else "-", f.rule,
                 f.severity, f.message] for f in findings]
        print(format_table(["program", "tuple", "rule", "severity", "message"],
                           rows))
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(f"{count} program(s) linted: {errors} error(s), "
          f"{warnings} warning(s)")
    return 1 if errors else 0


def _cmd_figure(args) -> int:
    if args.name == "fig2":
        rows = figure2(measured=True)
        print(format_table(
            ["factor", "alus", "add_lat", "mul_lat", "add_tput", "mul_tput"],
            [[r["factor"], r["alus"], r["add_latency_rel"],
              r["mul_latency_rel"], r["add_throughput_rel"],
              r["mul_throughput_rel"]] for r in rows]))
    elif args.name == "table3":
        return _cmd_systems(args)
    elif args.name == "area":
        rows = [[r["system"], r["area_factor"]] for r in area_table()]
        print(format_table(["system", "area_factor_vs_O3"], rows))
    else:
        print(f"unknown figure {args.name!r} (try: fig2, table3, area); the "
              "full evaluation lives in benchmarks/", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EVE (HPCA 2023) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list Table III systems")
    sub.add_parser("workloads", help="list Table IV workloads")

    run = sub.add_parser("run", help="simulate one system x workload")
    run.add_argument("system", choices=all_system_names())
    run.add_argument("workload", choices=sorted(REGISTRY))

    compare = sub.add_parser("compare", help="one workload on every system")
    compare.add_argument("workload", choices=sorted(REGISTRY))

    uprog = sub.add_parser("uprog", help="show a macro-op micro-program")
    uprog.add_argument("macro")
    uprog.add_argument("--factor", type=int, default=8,
                       choices=list(EVE_FACTORS))
    uprog.add_argument("--op", default=None)

    lint = sub.add_parser(
        "lint", help="statically verify micro-programs (CFG + dataflow)")
    lint.add_argument("--factor", type=int, action="append",
                      choices=list(EVE_FACTORS), default=None,
                      help="parallelization factor(s) to lint for "
                           "(repeatable; default: all)")
    lint.add_argument("--macro", default=None,
                      help="restrict the ROM sweep to one macro-operation")
    lint.add_argument("--asm", default=None, metavar="FILE",
                      help="lint an assembly listing instead of the ROM")

    figure = sub.add_parser("figure", help="regenerate a static figure")
    figure.add_argument("name")
    return parser


_COMMANDS = {
    "systems": _cmd_systems,
    "workloads": _cmd_workloads,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "uprog": _cmd_uprog,
    "lint": _cmd_lint,
    "figure": _cmd_figure,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
