"""Analytical models of Section II's vector S-CIM taxonomy.

* :mod:`repro.analytics.perf_model` — latency/throughput of add and
  multiply versus the parallelization factor (Figure 2), both as a
  closed-form model and as measured from the actual micro-programs.
"""

from .perf_model import (
    DesignPoint,
    figure2_series,
    measured_design_point,
    modeled_design_point,
)

__all__ = [
    "DesignPoint",
    "figure2_series",
    "measured_design_point",
    "modeled_design_point",
]
