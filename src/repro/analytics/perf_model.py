"""Latency/throughput taxonomy of vector S-CIM designs (Section II, Fig. 2).

Two views of the same spectrum:

* :func:`modeled_design_point` — the closed-form analytical model the paper
  uses to argue the taxonomy: latency is proportional to the number of
  segments plus a fixed control overhead; throughput is in-situ ALUs
  divided by latency.
* :func:`measured_design_point` — the same quantities extracted from the
  *actual* micro-programs in the ROM, which is how we validate the model.

Both reproduce the paper's qualitative result: throughput peaks at the
balanced-utilization factor (n = 4 for a 256x256 array with 32 registers of
32-bit elements) because smaller factors suffer column under-utilization
and larger ones row under-utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..config import EVE_FACTORS
from ..sram.layout import RegisterLayout
from ..uops.rom import MacroOpRom

#: Fixed per-macro-op control overhead (cycles): counter initialisation
#: plus the final return, as discussed under "Latency" in Section II.
CONTROL_OVERHEAD = 3

#: Cycles per segment of a vector addition (one blc + one write-back).
ADD_CYCLES_PER_SEGMENT = 2

#: Cycles per multiplier bit, per segment: the doubling sweep (2, via the
#: adder) plus the masked accumulate sweep (2).
MUL_CYCLES_PER_BIT_SEGMENT = 4

#: Per-bit fixed cost of multiplication (mask walk, carry presets, loop
#: initialisation shared across the bit's sweeps).
MUL_CYCLES_PER_BIT_FIXED = 6

#: Per-segment overhead of the multiplier's outer loop (XRegister reload).
MUL_OUTER_CYCLES_PER_SEGMENT = 3


@dataclass(frozen=True)
class DesignPoint:
    """One point on the parallelization-factor spectrum."""

    factor: int
    alus: int
    add_latency: int
    mul_latency: int

    @property
    def add_throughput(self) -> float:
        """Element operations per cycle for additions."""
        return self.alus / self.add_latency

    @property
    def mul_throughput(self) -> float:
        return self.alus / self.mul_latency


def _layout(factor: int, rows: int, cols: int, element_bits: int,
            num_vregs: int) -> RegisterLayout:
    return RegisterLayout(rows=rows, cols=cols, element_bits=element_bits,
                          factor=factor, num_vregs=num_vregs)


def modeled_design_point(factor: int, rows: int = 256, cols: int = 256,
                         element_bits: int = 32, num_vregs: int = 32) -> DesignPoint:
    """Closed-form latency/throughput for one parallelization factor."""
    layout = _layout(factor, rows, cols, element_bits, num_vregs)
    segments = layout.segments
    add_latency = ADD_CYCLES_PER_SEGMENT * segments + CONTROL_OVERHEAD
    mul_latency = (element_bits
                   * (MUL_CYCLES_PER_BIT_SEGMENT * segments + MUL_CYCLES_PER_BIT_FIXED)
                   + MUL_OUTER_CYCLES_PER_SEGMENT * segments
                   + CONTROL_OVERHEAD)
    return DesignPoint(factor=factor, alus=layout.elements_per_array,
                       add_latency=add_latency, mul_latency=mul_latency)


def measured_design_point(factor: int, rows: int = 256, cols: int = 256,
                          element_bits: int = 32, num_vregs: int = 32) -> DesignPoint:
    """Latency/throughput measured from the real ROM micro-programs."""
    layout = _layout(factor, rows, cols, element_bits, num_vregs)
    rom = MacroOpRom(factor, element_bits)
    return DesignPoint(factor=factor, alus=layout.elements_per_array,
                       add_latency=rom.cycles("add"),
                       mul_latency=rom.cycles("mul"))


def figure2_series(factors: Iterable[int] = EVE_FACTORS, *, measured: bool = True,
                   rows: int = 256, cols: int = 256, element_bits: int = 32,
                   num_vregs: int = 32) -> List[Dict[str, float]]:
    """The Figure 2 data series, normalised to the factor-1 design.

    Returns one row per factor with latency and throughput of add and mul
    relative to bit-serial (factor 1), plus the in-situ ALU count shown on
    the figure's x-axis.
    """
    build = measured_design_point if measured else modeled_design_point
    points = [build(f, rows, cols, element_bits, num_vregs) for f in factors]
    base = points[0]
    series = []
    for point in points:
        series.append({
            "factor": point.factor,
            "alus": point.alus,
            "add_latency_rel": point.add_latency / base.add_latency,
            "mul_latency_rel": point.mul_latency / base.mul_latency,
            "add_throughput_rel": point.add_throughput / base.add_throughput,
            "mul_throughput_rel": point.mul_throughput / base.mul_throughput,
        })
    return series
