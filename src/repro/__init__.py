"""EVE: Ephemeral Vector Engines — a full Python reproduction.

Reproduces Al-Hawaj et al., *EVE: Ephemeral Vector Engines* (HPCA 2023):
an SRAM compute-in-memory vector engine with bit-hybrid execution, carved
ephemerally out of a private L2 cache, plus every substrate its evaluation
depends on — bit-accurate compute-SRAM circuits, the micro-programmed
control path, a cache/DRAM memory system, scalar and vector baseline
machines, the benchmark kernels, and the experiment harness regenerating
every table and figure.

Quick start::

    from repro import ExperimentRunner
    runner = ExperimentRunner()
    print(runner.speedup("O3+EVE-8", "vvadd", baseline="IO"))

Package map:

* :mod:`repro.config`          — Table III system configurations
* :mod:`repro.isa`             — RVV 32-bit-integer subset, traces, intrinsics
* :mod:`repro.sram`            — bit-accurate EVE SRAM and register layout
* :mod:`repro.uops`            — μops, micro-programs, counters, the ROM
* :mod:`repro.analytics`       — Section II taxonomy model (Figure 2)
* :mod:`repro.circuits_model`  — area / cycle-time / energy (Section VI)
* :mod:`repro.mem`             — caches, MSHRs, DRAM, way-partitioning
* :mod:`repro.cores`           — IO / O3 / IV / DV baselines
* :mod:`repro.core`            — the EVE engine (timing + bit-exact oracle)
* :mod:`repro.workloads`       — the seven Table IV kernels
* :mod:`repro.experiments`     — runners and figure/table generators
"""

from .config import EVE_FACTORS, all_system_names, eve_hardware_vl, make_system
from .errors import ReproError
from .experiments import ExperimentRunner, build_machine, format_table

__version__ = "1.0.0"

__all__ = [
    "EVE_FACTORS",
    "all_system_names",
    "eve_hardware_vl",
    "make_system",
    "ReproError",
    "ExperimentRunner",
    "build_machine",
    "format_table",
    "__version__",
]
