"""Experiment harness: builds Table III systems, runs workloads, and
regenerates every table and figure of the paper's evaluation.

* :mod:`repro.experiments.systems` — machine construction by name.
* :mod:`repro.experiments.runner` — trace caching + simulation driver.
* :mod:`repro.experiments.parallel` — process-pool sweep executor with
  an on-disk trace/result cache.
* :mod:`repro.experiments.figures` — per-figure/table data generators
  (Figure 2, Figure 6, Figure 7, Figure 8, Table IV, area efficiency).
* :mod:`repro.experiments.report` — plain-text table rendering.
"""

from .systems import build_machine, canonical_system, trace_vlmax
from .runner import ExperimentRunner, canonical_pairs
from .parallel import (DEFAULT_CACHE_ROOT, ParallelRunner, WorkerPool,
                       cache_stats, prune_cache, sweep_pairs)
from .report import compare_entry, format_table, sweep_result_payload
from . import figures

__all__ = ["build_machine", "canonical_system", "trace_vlmax",
           "ExperimentRunner", "canonical_pairs", "ParallelRunner",
           "WorkerPool", "cache_stats", "prune_cache", "DEFAULT_CACHE_ROOT",
           "sweep_pairs", "compare_entry", "format_table",
           "sweep_result_payload", "figures"]
