"""Experiment harness: builds Table III systems, runs workloads, and
regenerates every table and figure of the paper's evaluation.

* :mod:`repro.experiments.systems` — machine construction by name.
* :mod:`repro.experiments.runner` — trace caching + simulation driver.
* :mod:`repro.experiments.figures` — per-figure/table data generators
  (Figure 2, Figure 6, Figure 7, Figure 8, Table IV, area efficiency).
* :mod:`repro.experiments.report` — plain-text table rendering.
"""

from .systems import build_machine, trace_vlmax
from .runner import ExperimentRunner
from .report import format_table
from . import figures

__all__ = ["build_machine", "trace_vlmax", "ExperimentRunner", "format_table",
           "figures"]
