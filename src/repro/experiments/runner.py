"""Simulation driver with trace caching.

Traces depend only on (workload, vlmax), so EVE-1/2/4 — all with a 2048
hardware vector length — share one trace, and the IV/DV machines share the
VL=64 trace.  Scalar systems run the workload's scalar trace.

The runner also carries the observability plumbing: a
:class:`~repro.obs.SelfProfiler` attributes the simulator's own host
wall-clock time to ``trace_build`` / ``sim:<system>`` phases, and
:meth:`run` accepts a tracer and/or metrics registry to instrument a
single simulation (instrumented runs bypass the result cache so the
instruments observe a real execution).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

from ..cores.result import SimResult
from ..isa.trace import Trace
from ..obs.events import NULL_TELEMETRY
from ..obs.metrics import MetricsRegistry
from ..obs.selfprof import SelfProfiler
from ..obs.tracer import SpanTracer
from ..workloads import DEFAULT_SEED, canonical_workload, get_workload
from .systems import build_machine, canonical_system, trace_vlmax

#: Environment switch for strict-mode static checking; CI sets it so every
#: freshly built vector trace must pass ``repro check`` before simulating.
STRICT_CHECK_ENV = "EVE_STRICT_CHECK"


def strict_check_enabled() -> bool:
    """Whether the environment requests strict-mode trace checking."""
    return os.environ.get(STRICT_CHECK_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def canonical_pairs(pairs) -> list:
    """Canonicalize (system, workload) pairs and drop duplicates,
    preserving first-seen order — the shared front half of every
    prefetch implementation and of the job scheduler's cell expansion,
    so all of them agree on what "the same cell" means."""
    ordered = []
    seen = set()
    for system, workload in pairs:
        key = (canonical_system(system), canonical_workload(workload))
        if key not in seen:
            seen.add(key)
            ordered.append(key)
    return ordered


class ExperimentRunner:
    """Runs (system, workload) pairs, caching traces and results."""

    def __init__(self, params_override: Optional[Dict[str, dict]] = None,
                 verify: bool = True,
                 profiler: Optional[SelfProfiler] = None,
                 seed: int = DEFAULT_SEED,
                 strict_check: Optional[bool] = None,
                 telemetry=NULL_TELEMETRY,
                 compile_traces: bool = True) -> None:
        #: workload name -> params override (benchmarks use smaller inputs).
        self.params_override = params_override or {}
        self.verify = verify
        self.seed = seed
        self.profiler = profiler or SelfProfiler()
        #: Campaign telemetry hub (:data:`~repro.obs.events.NULL_TELEMETRY`
        #: by default — the zero-cost null-hook pattern; pass a
        #: :class:`~repro.obs.events.CampaignTelemetry` to stream
        #: per-cell lifecycle events from :meth:`prefetch`).
        self.telemetry = telemetry
        #: Run the static hazard checkers on every freshly built vector
        #: trace and refuse to simulate a failing one.  ``None`` defers to
        #: the ``EVE_STRICT_CHECK`` environment variable (off by default
        #: in sweeps, on in CI).
        self.strict_check = (strict_check_enabled() if strict_check is None
                             else strict_check)
        #: Run uninstrumented simulations through the trace compiler
        #: (``--no-compile`` turns this off; instrumented runs always take
        #: the reference interpreter path regardless).
        self.compile_traces = compile_traces
        self._traces: Dict[Tuple[str, int], Trace] = {}
        self._compiled: Dict[Tuple[str, int], object] = {}
        self._results: Dict[Tuple[str, str], SimResult] = {}

    def _trace(self, workload_name: str, vlmax: int) -> Trace:
        key = (workload_name, vlmax)
        if key not in self._traces:
            workload = get_workload(workload_name)
            params = self.params_override.get(workload_name)
            with self.profiler.phase("trace_build"):
                if vlmax == 0:
                    self._traces[key] = workload.scalar_trace(params)
                else:
                    self._traces[key] = workload.vector_trace(
                        vlmax, params, verify=self.verify, seed=self.seed)
                    if self.strict_check:
                        from ..analysis import require_clean
                        require_clean(self._traces[key],
                                      context=f"strict check, vlmax={vlmax}")
        return self._traces[key]

    def _compiled_for(self, workload_name: str, vlmax: int):
        """The :class:`~repro.compiler.CompiledTrace` for one trace-cache
        cell, built once and shared by every system at that vlmax."""
        key = (workload_name, vlmax)
        if key not in self._compiled:
            from ..compiler import CompilerConfig, compile_trace
            trace = self._trace(workload_name, vlmax)
            config = CompilerConfig(strict=self.strict_check)
            with self.profiler.phase("compile"):
                self._compiled[key] = compile_trace(trace, config)
        return self._compiled[key]

    def trace_for(self, system_name: str, workload_name: str) -> Trace:
        """The trace ``system_name`` would simulate for ``workload_name``
        (built and cached on first request; scalar systems get the
        workload's scalar trace)."""
        system_name = canonical_system(system_name)
        workload_name = canonical_workload(workload_name)
        machine = build_machine(system_name)
        return self._trace(workload_name, trace_vlmax(machine.config))

    def run(self, system_name: str, workload_name: str,
            tracer: Optional[SpanTracer] = None,
            metrics: Optional[MetricsRegistry] = None,
            attribution=None) -> SimResult:
        # Canonicalize before the cache lookup so programmatic callers
        # spelling "io" and "IO" share one result/trace entry instead of
        # double-simulating (or crashing in make_system).
        system_name = canonical_system(system_name)
        workload_name = canonical_workload(workload_name)
        instrumented = (tracer is not None or metrics is not None
                        or attribution is not None)
        key = (system_name, workload_name)
        if not instrumented and key in self._results:
            return self._results[key]
        machine = build_machine(system_name, tracer=tracer, metrics=metrics,
                                attribution=attribution)
        vlmax = trace_vlmax(machine.config)
        trace = self._trace(workload_name, vlmax)
        # The compiled path is only valid (and only faster) uninstrumented;
        # the machines also gate on this, but skipping the compile here
        # avoids paying for a CompiledTrace an instrumented run ignores.
        compiled = (self._compiled_for(workload_name, vlmax)
                    if self.compile_traces and not instrumented else None)
        with self.profiler.phase(f"sim:{system_name}"):
            result = machine.run(trace, compiled=compiled)
        if not instrumented:
            self._results[key] = result
        return result

    def cell_metrics(self, system_name: str, workload_name: str):
        """Pre-collected ``(flat, snapshot)`` metrics for one cell, or
        ``None``.  The serial runner never pre-collects; the parallel
        sweep executor overrides this with worker-captured registries."""
        return None

    def prefetch(self, pairs) -> Dict[str, object]:
        """Warm the result cache for every (system, workload) cell.

        The serial implementation just runs the cells in order; the
        process-pool subclass
        (:class:`~repro.experiments.parallel.ParallelRunner`) overrides
        this with a worker fan-out.  Returns summary stats either way.
        """
        start = time.perf_counter()
        ordered = canonical_pairs(pairs)
        if self.telemetry.enabled:
            self.telemetry.begin([f"{s}/{w}" for s, w in ordered])
        simulated = cached = 0
        for system, workload in ordered:
            was_warm = (system, workload) in self._results
            cached += was_warm
            simulated += not was_warm
            if not self.telemetry.enabled:
                self.run(system, workload)
                continue
            unit = f"{system}/{workload}"
            t0 = time.monotonic()
            try:
                result = self.run(system, workload)
            except Exception as exc:
                self.telemetry.unit_finished(
                    unit, ok=False, t_start=t0, t_end=time.monotonic(),
                    detail={"error": f"{type(exc).__name__}: {exc}"})
                raise
            self.telemetry.unit_finished(
                unit, ok=True, cached=was_warm, t_start=t0,
                t_end=time.monotonic(),
                detail={"system": system, "workload": workload,
                        "cycles": result.cycles})
        return {"cells": len(ordered), "simulated": simulated,
                "cached": cached, "jobs": 1,
                "seconds": time.perf_counter() - start}

    def speedup(self, system_name: str, workload_name: str,
                baseline: str = "IO") -> float:
        """Wall-clock speedup of ``system_name`` over ``baseline``."""
        return self.run(system_name, workload_name).speedup_over(
            self.run(baseline, workload_name))
