"""Simulation driver with trace caching.

Traces depend only on (workload, vlmax), so EVE-1/2/4 — all with a 2048
hardware vector length — share one trace, and the IV/DV machines share the
VL=64 trace.  Scalar systems run the workload's scalar trace.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cores.result import SimResult
from ..isa.trace import Trace
from ..workloads import get_workload
from .systems import build_machine, trace_vlmax


class ExperimentRunner:
    """Runs (system, workload) pairs, caching traces and results."""

    def __init__(self, params_override: Optional[Dict[str, dict]] = None,
                 verify: bool = True) -> None:
        #: workload name -> params override (benchmarks use smaller inputs).
        self.params_override = params_override or {}
        self.verify = verify
        self._traces: Dict[Tuple[str, int], Trace] = {}
        self._results: Dict[Tuple[str, str], SimResult] = {}

    def _trace(self, workload_name: str, vlmax: int) -> Trace:
        key = (workload_name, vlmax)
        if key not in self._traces:
            workload = get_workload(workload_name)
            params = self.params_override.get(workload_name)
            if vlmax == 0:
                self._traces[key] = workload.scalar_trace(params)
            else:
                self._traces[key] = workload.vector_trace(
                    vlmax, params, verify=self.verify)
        return self._traces[key]

    def run(self, system_name: str, workload_name: str) -> SimResult:
        key = (system_name, workload_name)
        if key not in self._results:
            machine = build_machine(system_name)
            vlmax = trace_vlmax(machine.config)
            trace = self._trace(workload_name, vlmax)
            self._results[key] = machine.run(trace)
        return self._results[key]

    def speedup(self, system_name: str, workload_name: str,
                baseline: str = "IO") -> float:
        """Wall-clock speedup of ``system_name`` over ``baseline``."""
        return self.run(system_name, workload_name).speedup_over(
            self.run(baseline, workload_name))
