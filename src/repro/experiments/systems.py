"""Machine construction for the Table III systems."""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SystemConfig, all_system_names, make_system
from ..core.engine import EveMachine
from ..cores.dv import DecoupledVectorMachine
from ..cores.iv import IntegratedVectorMachine
from ..cores.scalar import ScalarCore
from ..errors import ConfigError

#: The vector length the RVV binary is characterised at (Table IV) and the
#: strip length short-vector machines decompose internally.
BASE_TRACE_VL = 64

#: Lowercase -> canonical system-name map, built once on first use (the
#: Table III name set is fixed at import time).
_CANONICAL_SYSTEMS: Optional[Dict[str, str]] = None


def canonical_system(name: str) -> str:
    """Case-insensitive system-name lookup (``o3+eve-4`` → ``O3+EVE-4``).

    Unknown names pass through unchanged so the eventual
    :func:`~repro.config.make_system` error names the caller's spelling.
    """
    global _CANONICAL_SYSTEMS
    if _CANONICAL_SYSTEMS is None:
        _CANONICAL_SYSTEMS = {known.lower(): known
                              for known in all_system_names()}
    return _CANONICAL_SYSTEMS.get(name.lower(), name)


def build_machine(name: str, tracer=None, metrics=None, attribution=None):
    """Build the simulator for one Table III system name.

    ``tracer`` / ``metrics`` / ``attribution`` (a
    :class:`~repro.obs.SpanTracer` / :class:`~repro.obs.MetricsRegistry` /
    :class:`~repro.obs.AttributionCollector`) instrument the run; all
    default to the zero-cost null implementations.
    """
    config = make_system(name)
    if config.vector is None:
        return ScalarCore(config, tracer=tracer, metrics=metrics,
                          attribution=attribution)
    kind = config.vector.kind
    if kind == "iv":
        return IntegratedVectorMachine(config, tracer=tracer, metrics=metrics,
                                       attribution=attribution)
    if kind == "dv":
        return DecoupledVectorMachine(config, tracer=tracer, metrics=metrics,
                                      attribution=attribution)
    if kind == "eve":
        return EveMachine(config, tracer=tracer, metrics=metrics,
                          attribution=attribution)
    raise ConfigError(f"unknown vector engine kind {kind!r}")


def trace_vlmax(config: SystemConfig) -> int:
    """The vsetvl VLMAX a machine grants the (shared) RVV binary.

    Scalar systems return 0 (they run the scalar trace).  The integrated
    and decoupled units grant 64; EVE grants its configuration's hardware
    vector length (Table III).
    """
    if config.vector is None:
        return 0
    if config.vector.kind == "eve":
        return config.vector.hardware_vl
    return BASE_TRACE_VL
