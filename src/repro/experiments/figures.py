"""Data generators for every evaluation table and figure.

Each function returns plain data structures (lists of dicts) that the
benchmark drivers render with :mod:`repro.experiments.report`; nothing here
depends on plotting so the results are easy to assert against in tests.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from ..analytics import figure2_series
from ..circuits_model import AreaModel, system_area_factor
from ..config import EVE_FACTORS, all_system_names, make_system
from ..cores.result import BREAKDOWN_BUCKETS
from ..errors import ExperimentError
from ..workloads import get_workload
from .runner import ExperimentRunner
from .systems import trace_vlmax

#: Applications of the evaluation (Table IV rows).
ALL_APPS = ("vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d",
            "backprop", "sw")

#: Applications in the paper's geometric mean (Table IV footnote).
GEOMEAN_APPS = ("k-means", "pathfinder", "jacobi-2d", "backprop", "sw")

EVE_SYSTEMS = tuple(f"O3+EVE-{n}" for n in EVE_FACTORS)


def geomean(values: Iterable[float], what: str = "values") -> float:
    """Geometric mean; raises :class:`~repro.errors.ExperimentError` on
    an empty selection (e.g. an app filter that matches nothing) instead
    of dividing by zero."""
    values = list(values)
    if not values:
        raise ExperimentError(
            f"geometric mean over an empty selection of {what}; "
            f"check the app/system filters")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# -- Figure 2 -----------------------------------------------------------------

def figure2(measured: bool = True) -> List[Dict[str, float]]:
    """Latency/throughput vs parallelization factor (Section II)."""
    return figure2_series(measured=measured)


# -- Table III -----------------------------------------------------------------

def table3() -> List[Dict[str, object]]:
    """The simulated-systems table, including derived EVE vector lengths."""
    rows = []
    for name in all_system_names():
        config = make_system(name)
        rows.append({
            "system": name,
            "l2_kb": config.l2.size_bytes // 1024,
            "l2_ways": config.l2.ways,
            "hardware_vl": (config.vector.hardware_vl if config.vector else 0),
            "vlmax": trace_vlmax(config),
            "cycle_time_ns": config.cycle_time_ns,
        })
    return rows


# -- Figure 6 / Table IV -----------------------------------------------------------

def figure6(runner: ExperimentRunner,
            apps: Iterable[str] = ALL_APPS,
            systems: Optional[Iterable[str]] = None) -> List[Dict[str, float]]:
    """Speedups over IO for every system and application."""
    systems = list(systems or all_system_names())
    rows = []
    for app in apps:
        row: Dict[str, float] = {"workload": app}
        for system in systems:
            row[system] = runner.speedup(system, app, baseline="IO")
        rows.append(row)
    geo: Dict[str, float] = {"workload": "geomean*"}
    for system in systems:
        geo[system] = geomean(
            (runner.speedup(system, app, baseline="IO")
             for app in GEOMEAN_APPS),
            what=f"{system} speedups over the geomean apps")
    rows.append(geo)
    return rows


def table4_characterization(apps: Iterable[str] = ALL_APPS,
                            vlmax: int = 64) -> List[Dict[str, float]]:
    """The static characterisation columns of Table IV."""
    from ..isa.opcodes import Category
    rows = []
    for app in apps:
        workload = get_workload(app)
        vstats = workload.vector_trace(vlmax).stats()
        sstats = workload.scalar_trace().stats()
        rows.append({
            "workload": app,
            "suite": workload.suite,
            "scalar_dins": sstats.dynamic_instrs,
            "vector_dins": vstats.dynamic_instrs,
            "vi_pct": vstats.vi_pct,
            "ctrl": vstats.mix_pct(Category.CTRL),
            "ialu": vstats.mix_pct(Category.IALU),
            "imul": vstats.mix_pct(Category.IMUL),
            "xe": vstats.mix_pct(Category.XELEM),
            "us": vstats.mix_pct(Category.MEM_UNIT),
            "st": vstats.mix_pct(Category.MEM_STRIDE),
            "idx": vstats.mix_pct(Category.MEM_INDEX),
            "prd": vstats.prd_pct,
            "vo_pct": vstats.vo_pct,
            "vpar": vstats.vpar,
            "winf": vstats.total_ops / max(1, sstats.dynamic_instrs),
            "arint": vstats.arith_intensity,
        })
    return rows


def table4_speedups(runner: ExperimentRunner,
                    apps: Iterable[str] = ALL_APPS) -> List[Dict[str, float]]:
    """Speedups vs O3+IV plus the E-8 ratio columns of Table IV."""
    rows = []
    for app in apps:
        row: Dict[str, float] = {"workload": app}
        row["DV"] = runner.speedup("O3+DV", app, baseline="O3+IV")
        for n in EVE_FACTORS:
            row[f"E-{n}"] = runner.speedup(f"O3+EVE-{n}", app, baseline="O3+IV")
        row["E8/E1"] = row["E-8"] / row["E-1"]
        row["E8/E32"] = row["E-8"] / row["E-32"]
        rows.append(row)
    geo: Dict[str, float] = {"workload": "geomean*"}
    for key in ["DV"] + [f"E-{n}" for n in EVE_FACTORS]:
        system = "O3+DV" if key == "DV" else f"O3+EVE-{key.split('-')[1]}"
        geo[key] = geomean(
            (runner.speedup(system, app, baseline="O3+IV")
             for app in GEOMEAN_APPS),
            what=f"{system} speedups over the geomean apps")
    geo["E8/E1"] = geo["E-8"] / geo["E-1"]
    geo["E8/E32"] = geo["E-8"] / geo["E-32"]
    rows.append(geo)
    return rows


# -- Figure 7 -------------------------------------------------------------------

def figure7(runner: ExperimentRunner,
            apps: Iterable[str] = GEOMEAN_APPS) -> List[Dict[str, float]]:
    """Execution breakdown of every EVE design, normalised to EVE-1."""
    rows = []
    for app in apps:
        reference = runner.run("O3+EVE-1", app).cycles
        for system in EVE_SYSTEMS:
            result = runner.run(system, app)
            normalised = result.breakdown.normalised_to(reference)
            row = {"workload": app, "system": system,
                   "total": result.cycles / reference}
            row.update(normalised)
            rows.append(row)
    return rows


# -- Figure 8 --------------------------------------------------------------------

def figure8(runner: ExperimentRunner,
            apps: Iterable[str] = ("k-means", "pathfinder", "backprop"),
            ) -> List[Dict[str, float]]:
    """Fraction of execution time the VMU stalls issuing LLC requests."""
    rows = []
    for app in apps:
        row: Dict[str, float] = {"workload": app}
        for system in EVE_SYSTEMS:
            row[system] = runner.run(system, app).vmu_llc_stall_frac
        rows.append(row)
    return rows


# -- Area efficiency (Section VII-B) -------------------------------------------------

def area_table() -> List[Dict[str, float]]:
    """System area factors and EVE circuit overheads."""
    rows = []
    for name in all_system_names():
        row: Dict[str, object] = {"system": name,
                                  "area_factor": system_area_factor(name)}
        if name.startswith("O3+EVE-"):
            model = AreaModel(int(name.split("-")[-1]))
            row["stack_overhead"] = model.stack_overhead
            row["eve_sram_overhead"] = model.eve_sram_overhead
            row["l2_overhead"] = model.l2_overhead
        rows.append(row)
    return rows


def area_efficiency(runner: ExperimentRunner,
                    apps: Iterable[str] = GEOMEAN_APPS) -> List[Dict[str, float]]:
    """Performance per area relative to the O3 baseline (the paper's
    area-normalised performance argument)."""
    apps = list(apps)
    rows = []
    for name in ("O3+IV", "O3+DV") + EVE_SYSTEMS:
        perf = geomean(
            (runner.speedup(name, app, baseline="O3") for app in apps),
            what=f"{name} speedups over {', '.join(apps) or 'no apps'}")
        area = system_area_factor(name)
        rows.append({"system": name, "speedup_vs_o3": perf,
                     "area_factor": area, "perf_per_area": perf / area})
    return rows


def breakdown_headers() -> List[str]:
    return ["workload", "system", "total"] + list(BREAKDOWN_BUCKETS)
