"""Plain-text table rendering and shared JSON payload builders.

The payload builders exist so every producer of a sweep/compare document
— ``repro sweep --json``, ``repro compare --json``, and the job service's
result endpoint — assembles it through one code path.  That is what makes
the service's byte-identity guarantee (a job result equals the direct CLI
run) a structural property instead of a test-enforced coincidence.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned ASCII table (first column left-aligned)."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return "  ".join(parts)

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out += [line(row) for row in str_rows]
    return "\n".join(out)


def sweep_result_payload(runner, systems: Sequence[str],
                         workloads: Sequence[str]) -> Dict[str, object]:
    """The deterministic core of a sweep document.

    ``{"systems", "workloads", "baseline", "cells", "speedups"}`` —
    exactly the ``repro sweep --json`` payload minus its wall-clock
    ``cache`` block, built by running every (system, workload) cell
    through ``runner`` (warm after a prefetch) in grid order.
    """
    from .parallel import sweep_pairs
    pairs = sweep_pairs(systems, workloads)
    base_results = ({workload: runner.run("IO", workload)
                     for workload in workloads} if "IO" in systems else {})
    cells: Dict[str, Dict[str, dict]] = {}
    speedups: Dict[str, Dict[str, float]] = {}
    for system, workload in pairs:
        result = runner.run(system, workload)
        cells.setdefault(workload, {})[system] = {
            "cycles": result.cycles, "time_ns": result.time_ns,
            "instructions": result.instructions}
        if base_results:
            speedups.setdefault(workload, {})[system] = (
                base_results[workload].time_ns / result.time_ns)
    return {"systems": list(systems), "workloads": list(workloads),
            "baseline": "IO" if base_results else None,
            "cells": cells, "speedups": speedups}


def compare_entry(result, base) -> Tuple[Dict[str, object], float]:
    """One system's row of a compare document: the SimResult JSON view
    (metrics stripped) plus its speedup over the baseline result."""
    speedup = base.time_ns / result.time_ns
    entry = result.to_json_dict()
    entry.pop("metrics", None)
    entry["speedup_vs_IO"] = speedup
    return entry, speedup
