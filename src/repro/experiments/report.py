"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned ASCII table (first column left-aligned)."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return "  ".join(parts)

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out += [line(row) for row in str_rows]
    return "\n".join(out)
