"""Process-pool sweep executor with a crash-safe on-disk cell cache.

The paper's headline results are a full cross-product of ~11 systems x
7 workloads that :class:`~repro.experiments.runner.ExperimentRunner`
simulates strictly serially.  This module fans the (system, workload)
cells out over ``multiprocessing`` workers and merges the outcomes back
into the ordinary runner caches, so every downstream consumer (the
figure harnesses, the scorecard, ``repro compare``) sees exactly the
results a serial run would have produced — the simulator is
deterministic, and the merge is performed in input order regardless of
which worker finished first.

Two layers make repeat invocations cheap and workers independent:

* a **trace cache** keyed by ``(workload, vlmax, params-fingerprint)``
  — EVE-1/2/4 all decode the same VL=2048 trace, so the first worker to
  build it publishes it (atomic ``os.replace``) and the rest load the
  pickle instead of re-running the workload kernel;
* a **result cache** keyed by ``(system, workload, params-fingerprint,
  config-fingerprint)`` — the config fingerprint digests every Table
  III system config plus the toolkit version, so a code or parameter
  change invalidates the cache while a repeat invocation skips
  already-simulated cells entirely.

Both caches are advisory: deleting ``.eve-cache/`` (or passing
``cache_root=None``) simply re-simulates.  Writes go to a unique temp
file followed by ``os.replace``, so a crashed worker can never publish
a torn pickle; concurrent builders of the same key both publish
identical content and the last rename wins.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import json
import multiprocessing
import os
import pickle
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import all_system_names
from ..errors import ExperimentError
from ..obs.events import NULL_TELEMETRY, TelemetryMonitor
from ..obs.metrics import MetricsRegistry
from ..obs.selfprof import SelfProfiler
from ..workloads import DEFAULT_SEED, REGISTRY, canonical_workload, get_workload
from .runner import ExperimentRunner, canonical_pairs, strict_check_enabled
from .systems import build_machine, canonical_system, trace_vlmax

#: Default on-disk cache directory (sibling of ``.eve-runs/``).
DEFAULT_CACHE_ROOT = ".eve-cache"

#: Bump to invalidate every cached pickle when the cache layout changes.
#: v2: traces carry ``vlmax``/``buffers`` metadata, the ``vid`` opcode,
#: and free-list register allocation.
#: v3: result-cell keys fold the trace-compiler configuration (pass list
#: + compiler version), so compiled and ``--no-compile`` sweeps can never
#: collide on one cache entry.
CACHE_VERSION = 3

#: ``fork`` keeps worker start-up cheap where the OS offers it; spawn is
#: the portable fallback (all cell inputs are picklable primitives).
START_METHOD = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")


# -- cache keys ----------------------------------------------------------------

def params_fingerprint(workload_name: str,
                       params_override: Optional[Dict[str, dict]],
                       seed: int = DEFAULT_SEED,
                       compiler: Optional[dict] = None) -> str:
    """Digest of the workload's *resolved* parameters plus the input
    seed, so tiny and paper-scale runs of the same kernel — and runs of
    the same kernel with different ``--seed`` inputs — occupy distinct
    cache cells.

    ``compiler`` is the :func:`repro.compiler.compiler_descriptor` of the
    execution path (``None`` for the reference interpreter): folding it in
    keeps compiled and ``--no-compile`` results on distinct cells, so a
    compiler bug can never poison an interpreter baseline (or vice versa).
    """
    workload = get_workload(canonical_workload(workload_name))
    resolved = workload.resolve(
        (params_override or {}).get(workload.name))
    resolved["__seed__"] = seed
    if compiler is not None:
        resolved["__compiler__"] = compiler
    blob = json.dumps(resolved, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


_CONFIG_FP: Optional[str] = None


def sweep_config_fingerprint() -> str:
    """Digest of every Table III system config plus the toolkit version
    and cache schema — the "did the code change" part of a cell key.
    Computed once per process (configs are fixed at import time)."""
    global _CONFIG_FP
    if _CONFIG_FP is None:
        from .. import __version__
        from ..obs.runstore import config_fingerprint
        _CONFIG_FP = config_fingerprint(
            {"toolkit": __version__, "cache_schema": CACHE_VERSION})
    return _CONFIG_FP


def _slug(name: str) -> str:
    return name.replace(os.sep, "_").replace(" ", "_")


# -- the on-disk cache ---------------------------------------------------------

class CellCache:
    """Pickle cache of built traces and simulated cells under ``root``.

    Layout::

        <root>/traces/<workload>-vl<N>-<params_fp>.pkl
        <root>/results/<config_fp>/<system>--<workload>-<params_fp>[-m].pkl

    Loads tolerate missing files (a miss, never an error); *corrupt*
    entries — present but unreadable pickles — are distinguished from
    misses, quarantined in place (renamed to ``<path>.corrupt``, never
    deleted, so the evidence survives for a post-mortem), and reported
    to the caller so the sweep's cache telemetry can count them.
    Stores are atomic (unique temp + ``os.replace``).
    """

    #: A present-but-unreadable pickle raises one of these.
    _CORRUPT_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError,
                       ImportError, IndexError, ValueError)

    def __init__(self, root: str = DEFAULT_CACHE_ROOT) -> None:
        self.root = root

    def trace_path(self, workload: str, vlmax: int, params_fp: str) -> str:
        return os.path.join(self.root, "traces",
                            f"{_slug(workload)}-vl{vlmax}-{params_fp}.pkl")

    def result_path(self, system: str, workload: str, params_fp: str,
                    config_fp: str, instrumented: bool = False) -> str:
        suffix = "-m" if instrumented else ""
        return os.path.join(
            self.root, "results", config_fp,
            f"{_slug(system)}--{_slug(workload)}-{params_fp}{suffix}.pkl")

    def load_entry(self, path: str) -> Tuple[object, str]:
        """Load one entry: ``(obj, status)`` with status ``hit`` /
        ``miss`` / ``corrupt``.  Corrupt entries come back as a miss
        (``obj is None``) after being quarantined.  A hit refreshes the
        entry's mtime, so mtime order is last-use order and
        :func:`prune_cache` evicts least-recently-used entries first."""
        try:
            with open(path, "rb") as handle:
                obj = pickle.load(handle)
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - read-only cache mounts
                pass
            return obj, "hit"
        except FileNotFoundError:
            return None, "miss"
        except OSError:
            # Unreadable for environmental reasons (permissions, I/O):
            # a miss, not corruption — do not quarantine.
            return None, "miss"
        except self._CORRUPT_ERRORS:
            self.quarantine(path)
            return None, "corrupt"

    def quarantine(self, path: str) -> str:
        """Move a corrupt entry aside (rename, don't delete) so the next
        run re-simulates instead of tripping over it again."""
        target = f"{path}.corrupt"
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - raced with another worker
            pass
        return target

    def load(self, path: str):
        """Back-compat load: any unreadable entry is simply a miss."""
        return self.load_entry(path)[0]

    def store(self, path: str, obj) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.{os.getpid()}.{id(obj):x}.tmp"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error path
                os.unlink(tmp)


# -- cache accounting ----------------------------------------------------------

def _cache_entries(root: str) -> List[Tuple[float, int, str, str]]:
    """Every live cache entry under ``root`` as ``(mtime, bytes, kind,
    path)`` — kind is ``trace`` / ``result`` by subdirectory.  Quarantined
    ``*.corrupt`` files and stray temp files are not live entries."""
    entries: List[Tuple[float, int, str, str]] = []
    for kind, subdir in (("trace", "traces"), ("result", "results")):
        top = os.path.join(root, subdir)
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in filenames:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:  # pragma: no cover - raced with a pruner
                    continue
                entries.append((stat.st_mtime, stat.st_size, kind, path))
    return entries


def cache_stats(root: str = DEFAULT_CACHE_ROOT) -> Dict[str, object]:
    """Entry counts and byte totals of the cell cache, by kind, plus the
    quarantined ``*.corrupt`` census the service status endpoint reports."""
    stats: Dict[str, object] = {
        "root": root,
        "exists": os.path.isdir(root),
        "trace": {"count": 0, "bytes": 0},
        "result": {"count": 0, "bytes": 0},
        "corrupt": {"count": 0, "bytes": 0},
        "total_bytes": 0,
    }
    for _mtime, size, kind, _path in _cache_entries(root):
        stats[kind]["count"] += 1
        stats[kind]["bytes"] += size
        stats["total_bytes"] += size
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(".corrupt"):
                try:
                    size = os.stat(os.path.join(dirpath, name)).st_size
                except OSError:  # pragma: no cover - raced with cleanup
                    continue
                stats["corrupt"]["count"] += 1
                stats["corrupt"]["bytes"] += size
    return stats


def prune_cache(root: str = DEFAULT_CACHE_ROOT,
                max_bytes: int = 0) -> Dict[str, object]:
    """Evict least-recently-used cache entries until the live entries fit
    ``max_bytes`` (0 empties the cache).

    mtime is last-use time — :meth:`CellCache.load_entry` touches every
    hit — so eviction order is true LRU.  Quarantined ``*.corrupt`` files
    are evidence, not cache: they are never pruned and do not count
    against the budget.
    """
    entries = sorted(_cache_entries(root))  # oldest (least recent) first
    total = sum(size for _mtime, size, _kind, _path in entries)
    removed = freed = 0
    for _mtime, size, _kind, path in entries:
        if total - freed <= max_bytes:
            break
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced with another pruner
            continue
        removed += 1
        freed += size
    return {"root": root, "max_bytes": max_bytes, "removed": removed,
            "freed_bytes": freed, "remaining_bytes": total - freed}


# -- pool lifecycle ------------------------------------------------------------

class WorkerPool:
    """An explicitly managed, reusable process pool for cell fan-outs.

    A plain :func:`fan_out` spins a pool up and tears it down per call;
    a long-lived caller (the job service, a REPL session running many
    sweeps) constructs one ``WorkerPool`` and passes it to every
    ``fan_out`` / :class:`ParallelRunner` instead, so consecutive jobs
    reuse warm workers rather than paying fork start-up each time.

    Lifecycle is explicit and leak-proof: context-manager exit closes
    the pool (terminates it when exiting on an exception), and both
    :meth:`close` and :meth:`terminate` ``join()`` the workers, so no
    exit path — including KeyboardInterrupt/SIGTERM mid-sweep — leaves
    zombie worker processes behind.  ``jobs <= 1`` is a valid degenerate
    pool: no process is ever forked and work runs in the caller.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self._pool = None
        self._closed = False
        self._fork_lock = threading.Lock()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        """Whether worker processes currently exist."""
        return self._pool is not None

    def start(self) -> "WorkerPool":
        """Fork the workers now (idempotent, no-op when serial).

        Long-lived multithreaded callers — the job service, anything
        pushing :meth:`apply` through executor threads — must call this
        while the process is still quiet: forking lazily from a worker
        thread while other threads run can clone held locks into the
        children and deadlock them.
        """
        self.handle()
        return self

    def handle(self):
        """The underlying multiprocessing pool, created lazily on first
        use (``None`` when ``jobs <= 1`` — callers run in-process)."""
        if self._closed:
            raise ExperimentError("worker pool is closed")
        if self.jobs <= 1:
            return None
        if self._pool is None:
            with self._fork_lock:
                if self._pool is None:
                    ctx = multiprocessing.get_context(START_METHOD)
                    self._pool = ctx.Pool(processes=self.jobs)
        return self._pool

    def apply(self, func: Callable, spec):
        """Run one unit on the pool, blocking (in-process when serial).

        The job service calls this from executor threads — one blocked
        thread per in-flight cell — so the asyncio loop never blocks on
        a simulation.
        """
        handle = self.handle()
        if handle is None:
            return func(spec)
        return handle.apply(func, (spec,))

    def close(self) -> None:
        """Finish outstanding work, then reap the workers."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Stop immediately and reap the workers (no zombies)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self.close()
        else:
            self.terminate()
        return False


@contextlib.contextmanager
def _leased_pool(jobs: int, count: int, pool: Optional[WorkerPool]):
    """The multiprocessing pool one fan-out should run on.

    With a persistent ``pool`` the lease leaves it open for the next
    caller, but an interrupt (KeyboardInterrupt / SystemExit — what the
    service's SIGTERM handler raises in the main thread) tears it down
    so no workers outlive the sweep.  Without one, a fresh pool is
    created and always reaped on exit: closed and joined on success,
    terminated and joined on any error.
    """
    if pool is not None:
        try:
            yield pool.handle()
        except (KeyboardInterrupt, SystemExit):
            pool.terminate()
            raise
        return
    ctx = multiprocessing.get_context(START_METHOD)
    fresh = ctx.Pool(processes=min(jobs, count))
    try:
        yield fresh
        fresh.close()
    except BaseException:
        fresh.terminate()
        raise
    finally:
        fresh.join()


# -- the generic fan-out -------------------------------------------------------

def _observed_call(func: Callable, spec) -> Dict[str, object]:
    """Run one unit inside a worker, capturing what telemetry needs.

    This is the "workers stream events over the pool's result channel"
    half of the telemetry design: rather than opening a side channel,
    each worker wraps its return value with raw monotonic start/end
    timestamps (system-wide on the hosts we target, so directly
    comparable to the parent's clock), its pid, and any exception — the
    parent replays these as ``started`` / terminal events.  Exceptions
    are captured, not raised, so one failed unit cannot tear down the
    pool before its siblings report.
    """
    t0 = time.monotonic()
    value = error = None
    try:
        value = func(spec)
    except Exception as exc:  # replayed + re-raised by the parent
        error = exc
    return {"value": value, "error": error, "t0": t0,
            "t1": time.monotonic(), "pid": os.getpid()}


def _drain_observed(results: List, monitor,
                    poll_seconds: float = 0.05) -> List[Dict[str, object]]:
    """Collect ``apply_async`` observations, feeding the monitor live.

    Completions are reported to ``monitor.on_complete`` *as they land*
    (completion order — only live progress/heartbeat state depends on
    it); the returned list is input-ordered, so the downstream merge
    stays deterministic.
    """
    observed: List[Optional[Dict[str, object]]] = [None] * len(results)
    pending = set(range(len(results)))
    while pending:
        landed = [i for i in sorted(pending) if results[i].ready()]
        for i in landed:
            pending.discard(i)
            observed[i] = results[i].get()
            monitor.on_complete(i, observed[i])
        monitor.poll()
        if pending and not landed:
            time.sleep(poll_seconds)
    return observed


def fan_out(func: Callable, specs: Sequence, jobs: int,
            profiler: Optional[SelfProfiler] = None,
            phase: str = "fan_out", monitor=None,
            pool: Optional[WorkerPool] = None) -> List:
    """Map a picklable ``func`` over ``specs`` with a process pool.

    The shared executor behind :meth:`ParallelRunner.prefetch` and the
    fault-injection campaign runner: results come back in *input* order
    (never completion order), ``jobs=1`` or a single spec runs in-process
    with no pool, and ``chunksize=1`` deals work finely because specs can
    differ in cost by orders of magnitude.

    ``monitor`` (e.g. :class:`repro.obs.events.TelemetryMonitor`) opts a
    call into observed execution: every unit is wrapped by
    :func:`_observed_call`, ``monitor.on_dispatch(i)`` fires as specs
    are submitted, ``monitor.on_complete(i, observation)`` as results
    land, and ``monitor.poll()`` between completion checks (heartbeats,
    stall detection).  Worker exceptions are re-raised parent-side after
    the monitor has seen every unit's fate, preserving the unmonitored
    path's error semantics.  With ``monitor=None`` the pre-telemetry
    code path runs unchanged (``pool.map``) — the zero-cost guarantee.

    ``pool`` (a :class:`WorkerPool`) makes the pool lifecycle explicit:
    the fan-out runs on the caller's persistent workers (``jobs`` is
    taken from the pool) and leaves them warm for the next call, while
    an interrupt mid-sweep still tears them down via
    :func:`_leased_pool`.  Without one, a fresh pool is created per call
    and always joined on exit.
    """
    if not specs:
        return []
    if pool is not None:
        jobs = pool.jobs
    span = (profiler.phase(phase) if profiler is not None
            else contextlib.nullcontext())
    if monitor is None:
        if jobs <= 1 or len(specs) == 1:
            with span:
                return [func(spec) for spec in specs]
        with span:
            with _leased_pool(jobs, len(specs), pool) as mp_pool:
                return mp_pool.map(func, specs, chunksize=1)
    wrapped = functools.partial(_observed_call, func)
    with span:
        if jobs <= 1 or len(specs) == 1:
            observed = []
            for i, spec in enumerate(specs):
                monitor.on_dispatch(i)
                obs = wrapped(spec)
                observed.append(obs)
                monitor.on_complete(i, obs)
                monitor.poll()
        else:
            with _leased_pool(jobs, len(specs), pool) as mp_pool:
                handles = []
                for i, spec in enumerate(specs):
                    handles.append(mp_pool.apply_async(wrapped, (spec,)))
                    monitor.on_dispatch(i)
                observed = _drain_observed(handles, monitor)
    for obs in observed:  # first failure wins, in input order
        if obs["error"] is not None:
            raise obs["error"]
    return [obs["value"] for obs in observed]


# -- the worker ----------------------------------------------------------------

def simulate_cell(spec: tuple) -> Dict[str, object]:
    """Simulate one (system, workload) cell; runs inside a pool worker.

    ``spec`` is a picklable tuple ``(system, workload, params_override,
    cache_root, collect_metrics, verify[, seed[, compile]])`` — the
    trailing seed defaults to :data:`~repro.workloads.DEFAULT_SEED` and
    the trailing compile flag to ``True``, so pre-existing shorter specs
    keep working.  Returns the
    :class:`~repro.cores.result.SimResult` plus the worker's
    self-profiler phases and (optionally) its metrics-registry snapshot,
    all picklable for the parent-side merge.
    """
    system, workload, params_override, cache_root, collect_metrics, \
        verify = spec[:6]
    seed = spec[6] if len(spec) > 6 else DEFAULT_SEED
    compile_traces = spec[7] if len(spec) > 7 else True
    system = canonical_system(system)
    workload = canonical_workload(workload)
    profiler = SelfProfiler()
    cache = CellCache(cache_root) if cache_root else None
    from ..compiler import compiler_descriptor
    # Instrumented cells always run the reference interpreter, so their
    # cells carry no compiler descriptor either way.
    use_compiler = compile_traces and not collect_metrics
    trace_fp = params_fingerprint(workload, params_override, seed=seed)
    params_fp = params_fingerprint(
        workload, params_override, seed=seed,
        compiler=compiler_descriptor(use_compiler))
    config_fp = sweep_config_fingerprint()

    # Cache telemetry for this cell: entry statuses plus the quarantined
    # paths of any corrupt pickles (merged parent-side into per-sweep
    # hit/miss/corrupt counters and ``cache_corrupt`` events).
    cache_info: Dict[str, object] = {"result": None, "trace": None,
                                     "corrupt_paths": []}
    cached = None
    if cache is not None:
        result_path = cache.result_path(system, workload, params_fp,
                                        config_fp,
                                        instrumented=collect_metrics)
        cached, status = cache.load_entry(result_path)
        cache_info["result"] = status
        if status == "corrupt":
            cache_info["corrupt_paths"].append(result_path)
    if cached is not None:
        cached.update({"system": system, "workload": workload,
                       "cached": True, "profile": profiler.as_dict(),
                       "cache": cache_info})
        return cached

    metrics = MetricsRegistry() if collect_metrics else None
    machine = build_machine(system, metrics=metrics)
    vlmax = trace_vlmax(machine.config)
    trace = None
    trace_path = None
    if cache is not None:
        # Traces are compiler-independent, so the trace cache keys on the
        # bare params fingerprint and stays shared across compile modes.
        trace_path = cache.trace_path(workload, vlmax, trace_fp)
        trace, status = cache.load_entry(trace_path)
        cache_info["trace"] = status
        if status == "corrupt":
            cache_info["corrupt_paths"].append(trace_path)
    if trace is None:
        wl = get_workload(workload)
        params = (params_override or {}).get(workload)
        with profiler.phase("trace_build"):
            if vlmax == 0:
                trace = wl.scalar_trace(params)
            else:
                trace = wl.vector_trace(vlmax, params, verify=verify,
                                        seed=seed)
                if strict_check_enabled():
                    from ..analysis import require_clean
                    require_clean(trace,
                                  context=f"strict check, vlmax={vlmax}")
        if trace_path is not None:
            cache.store(trace_path, trace)
    compiled = None
    if use_compiler:
        from ..compiler import CompilerConfig, compile_trace
        with profiler.phase("compile"):
            compiled = compile_trace(
                trace, CompilerConfig(strict=strict_check_enabled()))
    with profiler.phase(f"sim:{system}"):
        result = machine.run(trace, compiled=compiled)

    payload: Dict[str, object] = {
        "result": result,
        "metrics_flat": metrics.flat() if metrics is not None else None,
        "metrics_snapshot": (metrics.snapshot()
                             if metrics is not None else None),
    }
    if cache is not None:
        cache.store(cache.result_path(system, workload, params_fp,
                                      config_fp,
                                      instrumented=collect_metrics),
                    dict(payload))
    payload.update({"system": system, "workload": workload,
                    "cached": False, "profile": profiler.as_dict(),
                    "cache": cache_info})
    return payload


# -- the executor --------------------------------------------------------------

def sweep_pairs(systems: Optional[Iterable[str]] = None,
                workloads: Optional[Iterable[str]] = None
                ) -> List[Tuple[str, str]]:
    """The ordered (system, workload) cross-product, canonicalized.

    Workloads vary in the outer loop (matching the figure harnesses'
    reading order) and defaults cover the full Figure 6 grid.
    """
    systems = [canonical_system(s) for s in (systems or all_system_names())]
    workloads = [canonical_workload(w)
                 for w in (workloads or sorted(REGISTRY))]
    return [(s, w) for w in workloads for s in systems]


def cell_unit(system: str, workload: str) -> str:
    """The telemetry unit id for one sweep cell."""
    return f"{system}/{workload}"


def describe_cell(payload: Dict[str, object]):
    """Telemetry view of one :func:`simulate_cell` payload:
    ``(cached, extra_events, detail)`` for
    :meth:`repro.obs.events.CampaignTelemetry.unit_finished`."""
    cache_info = payload.get("cache") or {}
    extra = tuple(("cache_corrupt", {"path": path})
                  for path in cache_info.get("corrupt_paths", ()))
    result = payload.get("result")
    detail = {"system": payload.get("system"),
              "workload": payload.get("workload")}
    cycles = getattr(result, "cycles", None)
    if isinstance(cycles, (int, float)):
        detail["cycles"] = cycles
    return bool(payload.get("cached")), extra, detail


class ParallelRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` whose cells can be prefetched by a
    process pool.

    :meth:`prefetch` fans the requested cells out over ``jobs`` workers
    and merges the returned results into the ordinary ``_results``
    cache, so subsequent :meth:`run` calls (the figure harnesses, the
    scorecard, speedup columns) hit warm entries and produce output
    byte-identical to a serial run.  With ``jobs=1`` the cells execute
    in-process through the same worker function, so the disk cache
    still applies but no pool is spawned.
    """

    def __init__(self, params_override: Optional[Dict[str, dict]] = None,
                 verify: bool = True,
                 profiler: Optional[SelfProfiler] = None,
                 jobs: Optional[int] = None,
                 cache_root: Optional[str] = DEFAULT_CACHE_ROOT,
                 collect_metrics: bool = False,
                 seed: int = DEFAULT_SEED,
                 telemetry=NULL_TELEMETRY,
                 compile_traces: bool = True,
                 pool: Optional[WorkerPool] = None) -> None:
        super().__init__(params_override=params_override, verify=verify,
                         profiler=profiler, seed=seed, telemetry=telemetry,
                         compile_traces=compile_traces)
        #: Optional persistent :class:`WorkerPool`; when set it owns the
        #: worker processes (and the job count) across prefetches and the
        #: runner never spins up a one-shot pool of its own.
        self.pool = pool
        self.jobs = (pool.jobs if pool is not None
                     else max(1, jobs if jobs is not None
                              else (os.cpu_count() or 1)))
        self.cache_root = cache_root
        self.collect_metrics = collect_metrics
        self._prefetched_metrics: Dict[Tuple[str, str], tuple] = {}

    def cell_metrics(self, system_name: str, workload_name: str):
        return self._prefetched_metrics.get(
            (canonical_system(system_name),
             canonical_workload(workload_name)))

    def prefetch(self, pairs: Sequence[Tuple[str, str]]
                 ) -> Dict[str, object]:
        """Simulate every requested cell, fanned out over the pool.

        Returns ``{"cells", "simulated", "cached", "jobs", "seconds"}``.
        Results are merged parent-side in input order (never completion
        order) and worker self-profiler phases are absorbed under a
        ``worker:`` namespace, so repeated prefetches are deterministic.
        """
        ordered: List[Tuple[str, str]] = canonical_pairs(pairs)
        todo = [key for key in ordered if key not in self._results]
        specs = [(system, workload, self.params_override, self.cache_root,
                  self.collect_metrics, self.verify, self.seed,
                  self.compile_traces)
                 for system, workload in todo]
        start = time.perf_counter()
        if not specs:
            return {"cells": len(ordered), "simulated": 0, "cached": 0,
                    "jobs": self.jobs, "seconds": 0.0,
                    "cache_hits": 0, "cache_misses": 0, "cache_corrupt": 0}
        monitor = None
        if self.telemetry.enabled:
            units = [cell_unit(system, workload) for system, workload in todo]
            self.telemetry.begin(units)
            monitor = TelemetryMonitor(self.telemetry, units,
                                       describe=describe_cell,
                                       jobs=self.jobs)
        outs = fan_out(simulate_cell, specs, self.jobs,
                       profiler=self.profiler, phase="sweep",
                       monitor=monitor, pool=self.pool)
        cached = corrupt = 0
        for out in outs:  # input order: the merge is deterministic
            key = (out["system"], out["workload"])
            self._results[key] = out["result"]
            if out["metrics_flat"] is not None:
                self._prefetched_metrics[key] = (out["metrics_flat"],
                                                 out["metrics_snapshot"])
            cached += bool(out["cached"])
            corrupt += len((out.get("cache") or {}).get("corrupt_paths", ()))
            self.profiler.absorb(out["profile"], prefix="worker:")
        return {"cells": len(ordered), "simulated": len(specs) - cached,
                "cached": cached, "jobs": self.jobs,
                "seconds": time.perf_counter() - start,
                "cache_hits": cached,
                "cache_misses": len(specs) - cached,
                "cache_corrupt": corrupt}
