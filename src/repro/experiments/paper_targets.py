"""The paper's published evaluation numbers, encoded as data.

Single source of truth for the fidelity scorecard
(:mod:`repro.obs.scorecard`): every datapoint the paper publishes that
our harnesses regenerate, with per-figure error budgets and the list of
known deviations (EXPERIMENTS.md "Known deviations" — kernels whose
absolute numbers are compressed by our scaled-down inputs).

Values transcribed from the paper's Table IV / Figure 6 / Figure 8 (see
EXPERIMENTS.md for the side-by-side).  Entries marked *derived* are
arithmetic consequences of published numbers (e.g. the Figure 6 O3+IV
geomean from the 25.6x-vs-IO and 4.59x-vs-IV headline pair), kept so the
scorecard can grade Figure 6's absolute axis.
"""

from __future__ import annotations

from typing import Dict

#: Table IV speedups vs O3+IV — the paper's published columns.  The paper
#: prints every EVE factor; EXPERIMENTS.md transcribes DV, E-1, E-8 and
#: E-32 (endpoints + the headline factor), so those are what we grade.
TABLE4_SPEEDUP_VS_IV: Dict[str, Dict[str, float]] = {
    "vvadd":      {"DV": 3.64, "E-1": 3.19, "E-8": 3.28,  "E-32": 3.38},
    "mmult":      {"DV": 4.42, "E-1": 0.93, "E-8": 5.34,  "E-32": 4.60},
    "k-means":    {"DV": 2.28, "E-1": 1.22, "E-8": 1.86,  "E-32": 1.51},
    "pathfinder": {"DV": 8.11, "E-1": 5.37, "E-8": 6.30,  "E-32": 6.20},
    "jacobi-2d":  {"DV": 6.36, "E-1": 6.18, "E-8": 13.49, "E-32": 12.69},
    "backprop":   {"DV": 2.14, "E-1": 2.01, "E-8": 2.07,  "E-32": 2.06},
    "sw":         {"DV": 3.44, "E-1": 2.43, "E-8": 6.21,  "E-32": 5.08},
}

#: Table IV five-app geometric-mean row (the 4.59x headline lives here).
TABLE4_GEOMEAN_VS_IV: Dict[str, float] = {
    "DV": 3.87, "E-1": 2.88, "E-8": 4.59, "E-32": 4.16,
}

#: Figure 6 five-app geomean speedups over the in-order core.  25.6
#: (EVE-8) and 21.6 (DV) are published headline numbers; the rest are
#: derived: IV = 25.6 / 4.59, and each EVE/DV point = Table IV geomean
#: x the derived IV-vs-IO factor.
FIG6_GEOMEAN_VS_IO: Dict[str, float] = {
    "O3+IV": 5.58,
    "O3+DV": 21.6,
    "O3+EVE-1": 16.1,
    "O3+EVE-8": 25.6,
    "O3+EVE-32": 23.2,
}

#: Which FIG6 geomean entries are derived rather than printed.
FIG6_DERIVED = ("O3+IV", "O3+EVE-1", "O3+EVE-32")

#: Figure 8 — fraction of execution time the VMU stalls issuing LLC
#: requests.  The paper shows backprop above 0.9 at every factor,
#: falling slowly as the hardware vector length halves, and k-means
#: around 0.45.
FIG8_VMU_STALL: Dict[str, Dict[str, float]] = {
    "backprop": {"O3+EVE-4": 0.93, "O3+EVE-8": 0.92, "O3+EVE-16": 0.91,
                 "O3+EVE-32": 0.90},
    "k-means":  {"O3+EVE-8": 0.45},
}

#: Known deviations (EXPERIMENTS.md): datapoints whose absolute values
#: cannot reproduce at our input scale.  They are still graded and
#: reported, but excluded from the gating geomean error.
KNOWN_DEVIATIONS: Dict[str, str] = {
    "table4:jacobi-2d": "needs 2K+ application vectors; compressed by "
                        "input scaling",
    "table4:sw": "needs 2K+ application vectors; compressed by input "
                 "scaling",
    "fig6:sw": "bit-serial EVE-1 falls below IO at our compressed sw "
               "input scale",
    "fig7:sw": "sw's busy-fraction U-shape flattens at our compressed "
               "input scale (keeps falling to E-32)",
    "fig8:backprop": "stall fractions compressed (paper >0.9, ours "
                     "0.3-0.6); the falling shape is what reproduces",
    "fig8:k-means": "our feature walk re-touches cluster lines so the "
                    "LLC absorbs the stream; documented non-reproduction",
    "fig6:O3+DV": "DV-vs-IO geomean compressed with every long-vector "
                  "kernel",
    "fig6:O3+EVE-1": "derived target; compressed by input scaling",
    "fig6:O3+EVE-8": "EVE-vs-IO geomean compressed by input scaling",
    "fig6:O3+EVE-32": "derived target; compressed by input scaling",
    "fig6:O3+IV": "derived target; compressed by input scaling",
}

#: Error budgets per figure: ``tight`` bounds grade A (essentially
#: reproduced), ``budget`` bounds grade B (reproduced within the scale
#: compression EXPERIMENTS.md documents).  A relative budget of 0.5
#: means measured/paper ratios up to 1.5x either way.
ERROR_BUDGETS: Dict[str, Dict[str, float]] = {
    "fig6":   {"tight": 0.15, "budget": 0.60},
    "table4": {"tight": 0.15, "budget": 0.50},
    "fig8":   {"tight": 0.15, "budget": 0.50},
}

#: Gate for the overall fidelity verdict: the geometric-mean multiplicative
#: error over non-deviation datapoints must stay under this factor.
#: EXPERIMENTS.md documents a ~2x compression from input scaling, so the
#: reproduction is "faithful" while the core geomean error stays < 2.5x.
GEOMEAN_ERROR_BUDGET = 2.5


def is_known_deviation(figure: str, kernel: str) -> bool:
    return f"{figure}:{kernel}" in KNOWN_DEVIATIONS


def deviation_note(figure: str, kernel: str) -> str:
    return KNOWN_DEVIATIONS.get(f"{figure}:{kernel}", "")
