"""Micro-operation definitions (Table II).

Row operands are *symbolic*: a :class:`RowRef` names a register slot
(``vs1``, ``vs2``, ``vd``, ``vm``) and a segment, where the segment may be a
literal or derived from a counter (``base + step * iteration``).  The VSU's
address generator resolves these against the register layout at execution
time, which is what makes one micro-program serve any register binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..errors import MicroProgramError

#: Register slots a micro-program may reference.
REG_SLOTS = ("vs1", "vs2", "vd", "vm")

ARITH_KINDS = (
    "rd", "wr", "blc", "wb", "lshift", "rshift", "lrot", "rrot",
    "mask_shft", "mask_shftl", "mask_carry", "sclr", "nop",
)

#: Data-in port patterns the VSU can drive (resolved per cycle).
DATA_IN_KINDS = ("zeros", "ones", "lsb_ones", "msb_ones", "scalar_seg")

COUNTER_KINDS = ("init", "decr", "incr", "none")
CONTROL_KINDS = ("bnz", "bnd", "jmp", "ret", "none")


@dataclass(frozen=True)
class CounterSeg:
    """A counter-derived segment index: ``base + step * iteration``."""

    counter: str
    base: int = 0
    step: int = 1


SegSpec = Union[int, CounterSeg]


@dataclass(frozen=True)
class RowRef:
    """Symbolic wordline reference: (register slot, segment)."""

    reg: str
    seg: SegSpec = 0

    def __post_init__(self) -> None:
        if self.reg not in REG_SLOTS:
            raise MicroProgramError(f"unknown register slot {self.reg!r}")


@dataclass(frozen=True)
class DataIn:
    """A data-in port pattern driven by the VSU.

    ``scalar_seg`` broadcasts segment ``seg`` of the macro-op's scalar
    operand to every column group (used for splats and constants).
    """

    kind: str
    seg: SegSpec = 0

    def __post_init__(self) -> None:
        if self.kind not in DATA_IN_KINDS:
            raise MicroProgramError(f"unknown data-in kind {self.kind!r}")


@dataclass(frozen=True)
class ArithUop:
    """One arithmetic μop executed by the EVE SRAM (Table II)."""

    kind: str
    a: Optional[RowRef] = None        # first wordline (rd/wr/blc/wb dest)
    b: Optional[RowRef] = None        # second wordline (blc)
    dest: Union[RowRef, str, None] = None   # wb destination (row or latch)
    src: Optional[str] = None         # wb source
    masked: bool = False
    conditional: bool = True          # shifters: gate on the mask latch
    invert: bool = False              # mask_carry: load the complement
    lsb_only: bool = False            # mask_carry: gate onto LSB columns
    data_in: Optional[DataIn] = None  # pattern to drive before wr/wb

    def __post_init__(self) -> None:
        if self.kind not in ARITH_KINDS:
            raise MicroProgramError(f"unknown arithmetic μop {self.kind!r}")
        if self.kind == "blc" and (self.a is None or self.b is None):
            raise MicroProgramError("blc needs two wordline operands")
        if self.kind in ("rd", "wr") and self.a is None:
            raise MicroProgramError(f"{self.kind} needs a wordline operand")
        if self.kind == "wb" and (self.dest is None or self.src is None):
            raise MicroProgramError("wb needs a destination and a source")


@dataclass(frozen=True)
class CounterUop:
    """One counter μop (init / decr / incr)."""

    kind: str
    counter: str = ""
    value: int = 0

    def __post_init__(self) -> None:
        if self.kind not in COUNTER_KINDS:
            raise MicroProgramError(f"unknown counter μop {self.kind!r}")
        if self.kind != "none" and not self.counter:
            raise MicroProgramError(f"{self.kind} needs a counter name")
        if self.kind == "init" and self.value <= 0:
            raise MicroProgramError("counter init value must be positive")


@dataclass(frozen=True)
class ControlUop:
    """One control μop manipulating the micro-program counter."""

    kind: str
    counter: str = ""
    target: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CONTROL_KINDS:
            raise MicroProgramError(f"unknown control μop {self.kind!r}")
        if self.kind in ("bnz", "bnd") and (not self.counter or not self.target):
            raise MicroProgramError(f"{self.kind} needs a counter and a target label")
        if self.kind == "jmp" and not self.target:
            raise MicroProgramError("jmp needs a target label")


@dataclass(frozen=True)
class UopTuple:
    """One VLIW tuple: counter μop, arithmetic μop, control μop.

    The three μops of a tuple execute in one cycle, in the order counter →
    arithmetic → control (Section IV-B).
    """

    counter: Optional[CounterUop] = None
    arith: Optional[ArithUop] = None
    control: Optional[ControlUop] = None

    def parts(self) -> Tuple[Optional[CounterUop], Optional[ArithUop], Optional[ControlUop]]:
        return self.counter, self.arith, self.control
