"""Micro-program container and a builder for writing them in Python.

A micro-program is a list of :class:`~repro.uops.uop.UopTuple` plus a label
table.  :class:`ProgramBuilder` provides the idioms the hand-written ROM
programs need — most importantly the *canonical sweep*: a two-tuple loop
body iterating a counter over all segments, which is the shape of Figure 4's
``add`` macro-operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import MicroProgramError
from .uop import ArithUop, ControlUop, CounterUop, UopTuple


class MicroProgram:
    """An immutable sequence of VLIW μop tuples with resolved labels."""

    def __init__(self, name: str, tuples: List[UopTuple],
                 labels: Dict[str, int]) -> None:
        self.name = name
        self.tuples = list(tuples)
        self.labels = dict(labels)
        for label, target in self.labels.items():
            if not 0 <= target <= len(self.tuples):
                raise MicroProgramError(
                    f"{name}: label {label!r} points outside the program")
        self._check_targets()

    def _check_targets(self) -> None:
        for i, tup in enumerate(self.tuples):
            ctrl = tup.control
            if ctrl is not None and ctrl.kind in ("bnz", "bnd", "jmp"):
                if ctrl.target not in self.labels:
                    raise MicroProgramError(
                        f"{self.name}[{i}]: undefined label {ctrl.target!r}")

    def __len__(self) -> int:
        return len(self.tuples)

    def target(self, label: str) -> int:
        return self.labels[label]


class ProgramBuilder:
    """Accumulates tuples and labels, then freezes into a MicroProgram."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tuples: List[UopTuple] = []
        self._labels: Dict[str, int] = {}
        self._auto_label = 0

    # -- raw emission -------------------------------------------------------

    def label(self, name: Optional[str] = None) -> str:
        if name is None:
            name = f"_L{self._auto_label}"
            self._auto_label += 1
        if name in self._labels:
            raise MicroProgramError(f"{self.name}: duplicate label {name!r}")
        self._labels[name] = len(self._tuples)
        return name

    def emit(self, counter: Optional[CounterUop] = None,
             arith: Optional[ArithUop] = None,
             control: Optional[ControlUop] = None) -> None:
        self._tuples.append(UopTuple(counter=counter, arith=arith, control=control))

    # -- sugar ---------------------------------------------------------------

    def arith(self, uop: ArithUop) -> None:
        self.emit(arith=uop)

    def init(self, counter: str, value: int) -> None:
        self.emit(counter=CounterUop(kind="init", counter=counter, value=value))

    def ret(self) -> None:
        self.emit(control=ControlUop(kind="ret"))

    def sweep(self, counter: str, count: int, body: List[ArithUop]) -> None:
        """The canonical count-down loop (Figure 4a's shape).

        Emits ``init counter``, then a loop whose body is ``body``; the
        first body μop shares its tuple with the ``decr`` and the last with
        the ``bnz``, so a two-μop body costs exactly two cycles per
        iteration.  A one-μop body costs one cycle per iteration.
        """
        if not body:
            raise MicroProgramError("sweep body must not be empty")
        if count <= 0:
            raise MicroProgramError("sweep count must be positive")
        self.init(counter, count)
        top = self.label()
        decr = CounterUop(kind="decr", counter=counter)
        back = ControlUop(kind="bnz", counter=counter, target=top)
        if len(body) == 1:
            self.emit(counter=decr, arith=body[0], control=back)
            return
        self.emit(counter=decr, arith=body[0])
        for uop in body[1:-1]:
            self.emit(arith=uop)
        self.emit(arith=body[-1], control=back)

    def build(self) -> MicroProgram:
        if not self._tuples or self._tuples[-1].control is None or \
                self._tuples[-1].control.kind != "ret":
            self.ret()
        return MicroProgram(self.name, self._tuples, self._labels)
