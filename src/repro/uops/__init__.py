"""EVE micro-operation layer (Section IV).

Macro-operations are implemented as *micro-programs*: sequences of VLIW
tuples, each holding up to one counter μop, one arithmetic μop, and one
control μop, executed in that order within a single cycle (Section IV-B).

* :mod:`repro.uops.uop` — μop and operand (row reference) definitions.
* :mod:`repro.uops.counters` — the 12 shared counters with zero and
  binary-decade flags.
* :mod:`repro.uops.program` — the micro-program container and builder.
* :mod:`repro.uops.executor` — executes micro-programs bit-exactly against
  an :class:`~repro.sram.EveSram`, or in timing-only mode for cycle counts.
* :mod:`repro.uops.rom` — the macro-operation ROM: builds, caches, and
  times the micro-program for every (macro-op, parallelization factor).
* :mod:`repro.uops.cfg` — exact control-flow graphs of micro-programs
  (control flow is data-independent, so the CFG is not an approximation).
* :mod:`repro.uops.lint` — the static analyzer: CFG + dataflow checks of
  every ROM listing (counters, latches, segment bounds, structure,
  termination, intra-tuple hazards).
"""

from .uop import ArithUop, ControlUop, CounterUop, CounterSeg, DataIn, RowRef, UopTuple
from .counters import Counter, CounterFile
from .program import MicroProgram, ProgramBuilder
from .executor import Binding, MicroEngine
from .rom import MacroOpRom, rom_specs
from .assembler import assemble, disassemble
from .cfg import ControlFlowGraph
from .lint import Finding, check_program, lint_program, lint_rom

__all__ = [
    "ArithUop", "ControlUop", "CounterUop", "CounterSeg", "DataIn", "RowRef",
    "UopTuple", "Counter", "CounterFile", "MicroProgram", "ProgramBuilder",
    "Binding", "MicroEngine", "MacroOpRom", "assemble", "disassemble",
    "ControlFlowGraph", "Finding", "check_program", "lint_program",
    "lint_rom", "rom_specs",
]
