"""Static analyzer for micro-programs: CFG + dataflow verification.

Because EVE control flow is data-independent, a micro-program's CFG
(:mod:`repro.uops.cfg`) is exact, and the checks below are sound
verifications of the hand-written ROM listings rather than heuristics.
Six rule families are enforced:

``counter-uninit`` (rule 1)
    A counter is consumed — ``decr``/``incr``, a ``bnz``/``bnd`` test, or a
    ``CounterSeg`` address — on some path where no ``init`` has executed.
``latch-uninit`` (rule 2)
    A latch (``carry``, ``mask``, ``xreg``, ``link``), the data-in port, or
    a compute result (bit-line stack, constant shifter) is consumed before
    a producer is guaranteed to have run on every path to the use.
``seg-bounds`` (rule 3)
    A ``RowRef``/``DataIn`` segment resolves outside ``[0, segments)`` for
    the given parallelization factor; ``CounterSeg`` ranges are derived
    from the ``init`` values reaching the use.
``unreachable`` / ``no-ret`` (rule 4)
    Dead tuples, and control running off the end of the listing without a
    ``ret`` (the hardware μsequencer would fetch the next ROM program).
``nontermination`` (rule 5)
    A CFG cycle with no exit branch, or whose only exit branches test
    counters never ticked inside the cycle (their flags can never arm).
``tuple-hazard`` (rule 6)
    Intra-tuple structural hazards between the counter / arithmetic /
    control slots, e.g. branching on a counter initialized in the same
    cycle (``init`` just cleared the flags the branch tests).

Severities: every rule reports ``error`` except dead code (``unreachable``)
and the advisory hazards, which are ``warning``.  :func:`check_program`
raises :class:`~repro.errors.LintError` when errors are present;
``repro lint`` exits non-zero on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import LintError
from .cfg import ControlFlowGraph
from .program import MicroProgram
from .uop import ArithUop, CounterSeg, RowRef, SegSpec, UopTuple

ERROR = "error"
WARNING = "warning"

#: The six rule families (rule 4 contributes two finding kinds).
RULES = (
    "counter-uninit",   # 1
    "latch-uninit",     # 2
    "seg-bounds",       # 3
    "unreachable",      # 4a
    "no-ret",           # 4b
    "nontermination",   # 5
    "tuple-hazard",     # 6
)

#: Sentinel in a reaching-init set: "no init on some path".
_UNINIT = None

#: Write-back sources fed by the bit-line compute stack (need a blc).
_BLC_SOURCES = frozenset({"and", "nand", "or", "nor", "xor", "xnor", "add"})

_LATCH_DESTS = {
    "carry": "carry",
    "mask": "mask",
    "mask_groups": "mask",
    "xreg": "xreg",
    "link": "link",
}

_LATCH_WHAT = {
    "carry": "the carry flip-flop",
    "mask": "the mask latch state",
    "xreg": "the XRegister",
    "link": "the spare-shifter link bit",
    "data_in": "the data-in port",
    "blc": "the bit-line compute stack",
    "shift": "the constant shifter",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by the analyzer."""

    rule: str
    severity: str
    program: str
    index: int          # tuple index; -1 for whole-program findings
    message: str

    def __str__(self) -> str:
        where = f"[{self.index}]" if self.index >= 0 else ""
        return f"{self.program}{where}: {self.severity}: {self.rule}: {self.message}"


def lint_program(program: MicroProgram, factor: int,
                 element_bits: int = 32) -> List[Finding]:
    """Run every rule over ``program`` for one parallelization factor."""
    cfg = ControlFlowGraph(program)
    findings: List[Finding] = []
    findings += _check_structure(cfg)
    if not program.tuples:
        return findings
    findings += _check_counters(cfg, factor, element_bits)
    findings += _check_latches(cfg)
    findings += _check_termination(cfg)
    findings += _check_tuple_hazards(program)
    findings.sort(key=lambda f: (f.index, RULES.index(f.rule), f.message))
    return findings


def check_program(program: MicroProgram, factor: int,
                  element_bits: int = 32) -> List[Finding]:
    """Lint and raise :class:`LintError` on error findings.

    Returns the full finding list (warnings included) when clean enough.
    """
    findings = lint_program(program, factor, element_bits)
    errors = [f for f in findings if f.severity == ERROR]
    if errors:
        raise LintError(
            f"{program.name}: {len(errors)} static-verification error(s): "
            + "; ".join(str(f) for f in errors[:5])
            + ("; ..." if len(errors) > 5 else ""),
            findings=findings)
    return findings


def lint_rom(factors: Sequence[int] = (1, 2, 4, 8, 16, 32),
             element_bits: int = 32,
             macro: Optional[str] = None) -> Tuple[int, List[Finding]]:
    """Lint every ROM program for every ``factor``.

    Returns ``(programs_linted, findings)``.  ``macro`` restricts the sweep
    to one macro-operation name.
    """
    from .rom import MacroOpRom, rom_specs

    findings: List[Finding] = []
    count = 0
    for factor in factors:
        rom = MacroOpRom(factor, element_bits)
        for name, params in rom_specs():
            if macro is not None and name != macro:
                continue
            program = rom.program(name, **params)
            findings += lint_program(program, factor, element_bits)
            count += 1
    return count, findings


# -- rule 4: structure --------------------------------------------------------


def _check_structure(cfg: ControlFlowGraph) -> List[Finding]:
    program = cfg.program
    findings = []
    if not program.tuples:
        return [Finding("no-ret", ERROR, program.name, -1,
                        "program is empty (no tuples, no ret)")]
    reach = cfg.reachable
    for i in range(len(program.tuples)):
        if i not in reach:
            findings.append(Finding(
                "unreachable", WARNING, program.name, i,
                "tuple is unreachable from the program entry"))
    reported_off_end = set()
    for edge in cfg.predecessors(cfg.exit_node):
        if edge.kind != "ret" and edge.src in reach and edge.src not in reported_off_end:
            reported_off_end.add(edge.src)
            findings.append(Finding(
                "no-ret", ERROR, program.name, edge.src,
                "control falls off the end of the program without a ret"))
    return findings


# -- rules 1 + 3: counter dataflow -------------------------------------------

# State: counter name -> frozenset of reaching init values, where the
# sentinel None (_UNINIT) marks "no init on some path".  A counter absent
# from the mapping is wholly uninitialized.

_CounterState = Dict[str, FrozenSet[object]]


def _counter_reads(tup: UopTuple) -> Iterator[Tuple[str, str]]:
    """Yield ``(counter, how)`` for every counter *consumed* by a tuple,
    in slot execution order (counter → arithmetic → control)."""
    if tup.counter is not None and tup.counter.kind in ("decr", "incr"):
        yield tup.counter.counter, f"{tup.counter.kind}'d"
    if tup.arith is not None:
        for _, seg in _seg_specs(tup.arith):
            if isinstance(seg, CounterSeg):
                yield seg.counter, "used for addressing"
    if tup.control is not None and tup.control.kind in ("bnz", "bnd"):
        yield tup.control.counter, f"tested by {tup.control.kind}"


def _seg_specs(uop: ArithUop) -> Iterator[Tuple[str, SegSpec]]:
    """Yield ``(operand description, seg spec)`` for every segment operand."""
    for label, ref in (("a", uop.a), ("b", uop.b)):
        if isinstance(ref, RowRef):
            yield f"{ref.reg} ({label})", ref.seg
    if isinstance(uop.dest, RowRef):
        yield f"{uop.dest.reg} (dest)", uop.dest.seg
    if uop.data_in is not None and uop.data_in.kind == "scalar_seg":
        yield "scalar data-in", uop.data_in.seg


def _counter_transfer(state: _CounterState, tup: UopTuple) -> _CounterState:
    if tup.counter is not None and tup.counter.kind == "init":
        state = dict(state)
        state[tup.counter.counter] = frozenset({tup.counter.value})
    return state


def _merge_counter_states(states: Iterable[_CounterState]) -> _CounterState:
    merged: _CounterState = {}
    states = list(states)
    keys = set()
    for state in states:
        keys |= set(state)
    for key in keys:
        values: set = set()
        for state in states:
            values |= state.get(key, frozenset({_UNINIT}))
        merged[key] = frozenset(values)
    return merged


def _counter_fixpoint(cfg: ControlFlowGraph) -> Dict[int, _CounterState]:
    """Forward may-analysis: reaching init values per node (in-states)."""
    program = cfg.program
    reach = cfg.reachable
    instates: Dict[int, _CounterState] = {0: {}}
    worklist = [0]
    while worklist:
        node = worklist.pop()
        if node == cfg.exit_node:
            continue
        out = _counter_transfer(instates.get(node, {}), program.tuples[node])
        for edge in cfg.successors(node):
            if edge.dst not in reach or edge.dst == cfg.exit_node:
                continue
            if edge.dst not in instates:
                instates[edge.dst] = out
                worklist.append(edge.dst)
            else:
                merged = _merge_counter_states([instates[edge.dst], out])
                if merged != instates[edge.dst]:
                    instates[edge.dst] = merged
                    worklist.append(edge.dst)
    return instates


def _seg_range(seg: CounterSeg, inits: FrozenSet[object]) -> Tuple[int, int]:
    """Segment index range over every reaching init value (index 0..V-1)."""
    lo, hi = None, None
    for value in inits:
        if value is _UNINIT:
            continue
        first = seg.base
        last = seg.base + seg.step * (int(value) - 1)
        lo = min(first, last) if lo is None else min(lo, first, last)
        hi = max(first, last) if hi is None else max(hi, first, last)
    return (seg.base, seg.base) if lo is None else (lo, hi)


def _check_counters(cfg: ControlFlowGraph, factor: int,
                    element_bits: int) -> List[Finding]:
    program = cfg.program
    segments = element_bits // factor
    instates = _counter_fixpoint(cfg)
    findings = []
    for node, state in sorted(instates.items()):
        tup = program.tuples[node]
        # Apply the counter slot first: an init covers same-tuple reads.
        effective = _counter_transfer(state, tup)
        seen = set()
        for counter, how in _counter_reads(tup):
            inits = effective.get(counter, frozenset({_UNINIT}))
            if _UNINIT in inits and (counter, how) not in seen:
                seen.add((counter, how))
                findings.append(Finding(
                    "counter-uninit", ERROR, program.name, node,
                    f"counter '{counter}' {how} but no init reaches this "
                    "tuple on every path"))
        if tup.arith is None:
            continue
        for operand, seg in _seg_specs(tup.arith):
            if isinstance(seg, CounterSeg):
                inits = effective.get(seg.counter, frozenset({_UNINIT}))
                lo, hi = _seg_range(seg, inits)
            else:
                lo = hi = int(seg)
            if lo < 0 or hi >= segments:
                findings.append(Finding(
                    "seg-bounds", ERROR, program.name, node,
                    f"segment of {operand} resolves to [{lo}, {hi}] but "
                    f"n={factor} gives only segments [0, {segments - 1}]"))
    return findings


# -- rule 2: latch dataflow ---------------------------------------------------


def _latch_events(uop: ArithUop) -> List[Tuple[str, str, str]]:
    """``("use" | "def", latch, how)`` events of one arithmetic μop, in
    execution order.  The data-in port is driven before the μop body
    (see :meth:`MicroEngine._apply_arith`), so its def comes first."""
    events: List[Tuple[str, str, str]] = []
    if uop.data_in is not None:
        events.append(("def", "data_in", ""))
    kind = uop.kind
    if kind == "wr":
        events.append(("use", "data_in", "written to the array by wr"))
        if uop.masked:
            events.append(("use", "mask", "gating a masked wr"))
    elif kind == "wb":
        src = uop.src
        if src == "data_in":
            events.append(("use", "data_in", "written back from the port"))
        elif src == "shift":
            events.append(("use", "shift", "written back (needs a prior rd)"))
        elif src == "mask":
            events.append(("use", "mask", "written back as a value"))
        elif src in _BLC_SOURCES:
            events.append(("use", "blc", f"feeding write-back source '{src}'"))
            if src == "add":
                events.append(("use", "carry", "summed as the carry-in"))
        if uop.masked and not isinstance(uop.dest, str):
            events.append(("use", "mask", "gating a masked wb"))
        if src == "add":
            events.append(("def", "carry", ""))
        if isinstance(uop.dest, str) and uop.dest in _LATCH_DESTS:
            events.append(("def", _LATCH_DESTS[uop.dest], ""))
    elif kind in ("lshift", "rshift"):
        if uop.conditional:
            events.append(("use", "mask", f"conditioning {kind}"))
        events.append(("use", "link", f"ferried into {kind}"))
        events.append(("def", "link", ""))
    elif kind in ("lrot", "rrot"):
        if uop.conditional:
            events.append(("use", "mask", f"conditioning {kind}"))
    elif kind in ("mask_shft", "mask_shftl"):
        events.append(("use", "xreg", f"walked by {kind}"))
        events.append(("def", "mask", ""))
    elif kind == "mask_carry":
        events.append(("use", "carry", "loaded into the mask latches"))
        events.append(("def", "mask", ""))
    elif kind == "sclr":
        events.append(("def", "link", ""))
    elif kind == "blc":
        events.append(("def", "blc", ""))
    elif kind == "rd":
        events.append(("def", "shift", ""))
    return events


def _latch_transfer(written: FrozenSet[str], tup: UopTuple) -> FrozenSet[str]:
    if tup.arith is None:
        return written
    produced = {latch for event, latch, _ in _latch_events(tup.arith)
                if event == "def"}
    return written | produced if produced else written


def _check_latches(cfg: ControlFlowGraph) -> List[Finding]:
    """Must-analysis: a latch use is clean only when a producer runs on
    *every* entry path (equivalently: a producing tuple dominates the use,
    or an earlier μop event of the same tuple produces it)."""
    program = cfg.program
    reach = cfg.reachable
    instates: Dict[int, FrozenSet[str]] = {0: frozenset()}
    worklist = [0]
    while worklist:
        node = worklist.pop()
        if node == cfg.exit_node:
            continue
        out = _latch_transfer(instates[node], program.tuples[node])
        for edge in cfg.successors(node):
            if edge.dst not in reach or edge.dst == cfg.exit_node:
                continue
            if edge.dst not in instates:
                instates[edge.dst] = out
                worklist.append(edge.dst)
            else:
                merged = instates[edge.dst] & out
                if merged != instates[edge.dst]:
                    instates[edge.dst] = merged
                    worklist.append(edge.dst)
    findings = []
    for node, written in sorted(instates.items()):
        tup = program.tuples[node]
        if tup.arith is None:
            continue
        have = set(written)
        for event, latch, how in _latch_events(tup.arith):
            if event == "def":
                have.add(latch)
            elif latch not in have:
                findings.append(Finding(
                    "latch-uninit", ERROR, program.name, node,
                    f"{_LATCH_WHAT[latch]} is {how} but no producer "
                    "reaches this tuple on every path"))
    return findings


# -- rule 5: termination ------------------------------------------------------


def _check_termination(cfg: ControlFlowGraph) -> List[Finding]:
    program = cfg.program
    findings = []
    for scc in cfg.sccs():
        nodes = set(scc)
        ticked = set()
        for i in scc:
            counter = program.tuples[i].counter
            if counter is not None and counter.kind in ("decr", "incr"):
                ticked.add(counter.counter)
        exit_guards = []
        for i in scc:
            for edge in cfg.successors(i):
                if edge.dst in nodes:
                    continue
                ctrl = program.tuples[i].control
                if ctrl is not None and ctrl.kind in ("bnz", "bnd"):
                    exit_guards.append((i, ctrl.counter))
        if not exit_guards:
            findings.append(Finding(
                "nontermination", ERROR, program.name, min(scc),
                f"loop over tuples {scc} has no exit branch (infinite loop)"))
        elif not any(counter in ticked for _, counter in exit_guards):
            guards = sorted({counter for _, counter in exit_guards})
            findings.append(Finding(
                "nontermination", ERROR, program.name, min(scc),
                f"loop over tuples {scc} only exits on counter(s) "
                f"{', '.join(guards)} never ticked inside it — the flag "
                "can never arm"))
    return findings


# -- rule 6: intra-tuple hazards ----------------------------------------------


def _check_tuple_hazards(program: MicroProgram) -> List[Finding]:
    findings = []
    for i, tup in enumerate(program.tuples):
        counter, arith, ctrl = tup.parts()
        if counter is not None and counter.kind == "init":
            name = counter.counter
            if ctrl is not None and ctrl.kind in ("bnz", "bnd") \
                    and ctrl.counter == name:
                findings.append(Finding(
                    "tuple-hazard", ERROR, program.name, i,
                    f"{ctrl.kind} tests counter '{name}' in the same tuple "
                    "that inits it — init just cleared the flag, so the "
                    "branch decision is stale"))
            if arith is not None and any(
                    isinstance(seg, CounterSeg) and seg.counter == name
                    for _, seg in _seg_specs(arith)):
                findings.append(Finding(
                    "tuple-hazard", WARNING, program.name, i,
                    f"tuple addresses through counter '{name}' in the same "
                    "cycle that inits it (index is forced to 0)"))
        if arith is not None and arith.kind == "wb" and arith.masked \
                and isinstance(arith.dest, str):
            findings.append(Finding(
                "tuple-hazard", WARNING, program.name, i,
                f"masked write-back to latch '{arith.dest}' — column "
                "masking only applies to wordline destinations"))
    return findings
