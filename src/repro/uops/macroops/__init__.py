"""Macro-operation micro-program generators (Section IV-B).

Each generator builds the micro-program implementing one vector
macro-operation for a given parallelization factor.  The generators are
registered in :data:`GENERATORS`; the :class:`~repro.uops.rom.MacroOpRom`
builds and caches programs through this registry.
"""

from .arith import generate_add, generate_rsub, generate_sub
from .logical import (
    generate_logic,
    generate_merge,
    generate_move,
    generate_splat,
)
from .compare import generate_compare, generate_minmax
from .shift import generate_shift_scalar, generate_shift_variable
from .mul import generate_mul
from .div import generate_div

#: macro name -> generator(factor, element_bits, **params) -> MicroProgram
GENERATORS = {
    "add": generate_add,
    "sub": generate_sub,
    "rsub": generate_rsub,
    "logic": generate_logic,
    "move": generate_move,
    "splat": generate_splat,
    "merge": generate_merge,
    "compare": generate_compare,
    "minmax": generate_minmax,
    "shift_scalar": generate_shift_scalar,
    "shift_variable": generate_shift_variable,
    "mul": generate_mul,
    "div": generate_div,
}

__all__ = ["GENERATORS"]
