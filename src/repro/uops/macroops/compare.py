"""Comparison, min/max macro-operations.

Ordered comparisons use the adder's carry chain: the carry-out of
``x + ~y + 1`` is the unsigned ``x >= y`` flag, and flipping both sign bits
first (the bias trick) turns it into the signed comparison.  Equality uses
the XOR stack with an OR-fold: first across segments (into ``vd``'s LSB
segment), then across the columns of each group by walking the XRegister
and accumulating through masked writes.

``vd`` is used as scratch throughout, so it must not alias a source.
"""

from __future__ import annotations

from ...errors import MicroProgramError
from ..program import MicroProgram, ProgramBuilder
from ..uop import ArithUop, CounterSeg, DataIn, RowRef
from .common import compare_core, copy_sweep, materialize_mask, seg_ref

#: op -> (x slot, y slot, invert carry) where carry = (x >= y).
_ORDERED = {
    "lt": ("vs1", "vs2", True),
    "ge": ("vs1", "vs2", False),
    "gt": ("vs2", "vs1", True),
    "le": ("vs2", "vs1", False),
}


def _equality(b: ProgramBuilder, factor: int, segments: int, op: str) -> None:
    """Leave the mask latches holding eq (op='eq') or ne (op='ne')."""
    vd0 = RowRef("vd", 0)
    b.sweep("seg0", segments, [
        ArithUop("blc", a=seg_ref("vs1"), b=seg_ref("vs2")),
        ArithUop("wb", dest=seg_ref("vd"), src="xor"),
    ])
    if segments > 1:
        # OR-fold the higher segments into segment 0.
        b.sweep("seg1", segments - 1, [
            ArithUop("blc", a=vd0, b=RowRef("vd", CounterSeg("seg1", base=1))),
            ArithUop("wb", dest=vd0, src="or"),
        ])
    # OR-fold across the columns of each group by walking the XRegister.
    b.arith(ArithUop("blc", a=vd0, b=vd0))
    b.arith(ArithUop("wb", dest="xreg", src="and"))
    b.arith(ArithUop("wr", a=vd0, data_in=DataIn("zeros")))
    b.sweep("bit0", factor, [
        ArithUop("mask_shft"),
        ArithUop("wr", a=vd0, masked=True, data_in=DataIn("lsb_ones")),
    ])
    # vd0's LSB now holds the "not equal" flag of each group.
    b.arith(ArithUop("blc", a=vd0, b=vd0))
    b.arith(ArithUop("wb", dest="mask_groups", src="and" if op == "ne" else "nor"))


def generate_compare(factor: int, element_bits: int, op: str = "lt",
                     signed: bool = True) -> MicroProgram:
    """``vd = (vs1 <op> vs2) ? 1 : 0`` — a mask-producing compare."""
    segments = element_bits // factor
    b = ProgramBuilder(f"cmp-{op}{'' if signed else 'u'}/{factor}")
    if op in ("eq", "ne"):
        _equality(b, factor, segments, op)
    elif op in _ORDERED:
        x, y, invert = _ORDERED[op]
        compare_core(b, x, y, segments, signed=signed)
        b.arith(ArithUop("mask_carry", invert=invert))
    else:
        raise MicroProgramError(f"unknown comparison {op!r}")
    materialize_mask(b, segments, counter="seg2")
    return b.build()


def generate_minmax(factor: int, element_bits: int, op: str = "min",
                    signed: bool = True) -> MicroProgram:
    """``vd = min/max(vs1, vs2)`` via compare-and-masked-copy."""
    if op not in ("min", "max"):
        raise MicroProgramError(f"unknown minmax op {op!r}")
    segments = element_bits // factor
    b = ProgramBuilder(f"{op}{'' if signed else 'u'}/{factor}")
    compare_core(b, "vs1", "vs2", segments, signed=signed)  # carry = vs1 >= vs2
    copy_sweep(b, "vs2", "vd", segments, counter="seg1")
    # min keeps vs1 where vs1 < vs2 (inverted carry); max where vs1 >= vs2.
    b.arith(ArithUop("mask_carry", invert=(op == "min")))
    copy_sweep(b, "vs1", "vd", segments, counter="seg2", masked=True)
    return b.build()
