"""Division and remainder macro-operations (restoring division).

The classic restoring algorithm needs a remainder register alongside the
shifting dividend; the VCU spills one architectural register to the cache
ways around a division and lends it to the micro-program as the ``vm``
slot.  Subtraction of the (untouched) divisor uses the complement identity
``R - D = ~(~R + D)``, whose carry doubles as the borrow flag, so the
divisor register is never modified.

Per bit, most significant first::

    [R : W] <<= 1                  # W = dividend copy in vd, collects Q
    R = ~(~R + D)                  # trial subtract; carry = borrow
    W.lsb = not borrow             # quotient bit (LSB-column masked write)
    if borrow: R += D              # restore

Bit-exact for the unsigned forms (``divu``/``remu``); the signed forms use
the same micro-program as a timing proxy (and are bit-exact for
non-negative operands) — see DESIGN.md for the rationale.
"""

from __future__ import annotations

from ...errors import MicroProgramError
from ..program import MicroProgram, ProgramBuilder
from ..uop import ArithUop, ControlUop, CounterUop, DataIn, RowRef
from .common import (
    add_sweep,
    complement_sweep,
    copy_sweep,
    set_carry,
    shift1_sweep,
    zero_sweep,
)


def generate_div(factor: int, element_bits: int, op: str = "divu") -> MicroProgram:
    """``vd = vs1 / vs2`` or ``vs1 % vs2``; ``vm`` is the spilled scratch.

    Division by zero follows the carry flags naturally: every trial
    subtract of 0 succeeds, so the quotient saturates to all-ones and the
    remainder equals the dividend — exactly the RVV-mandated results.
    """
    if op not in ("div", "rem", "divu", "remu"):
        raise MicroProgramError(f"unknown division op {op!r}")
    segments = element_bits // factor
    b = ProgramBuilder(f"{op}/{factor}")
    zero_sweep(b, "vm", segments)            # R = 0
    copy_sweep(b, "vs1", "vd", segments)     # W = dividend (collects Q)

    b.init("bit1", element_bits)
    loop = b.label()
    # [R : W] <<= 1 — the spare-shifter link ferries W's MSB into R's LSB.
    b.emit(counter=CounterUop(kind="decr", counter="bit1"),
           arith=ArithUop("sclr"))
    shift1_sweep(b, "vd", segments, left=True, clear_link=False)
    shift1_sweep(b, "vm", segments, left=True, clear_link=False)
    # Trial subtract: R = ~(~R + D); the add's carry is the borrow flag.
    complement_sweep(b, "vm", "vm", segments)
    set_carry(b, 0)
    add_sweep(b, "vm", "vs2", "vm", segments)
    complement_sweep(b, "vm", "vm", segments)
    # Quotient bit: W's just-vacated LSB <- no-borrow.
    b.arith(ArithUop("mask_carry", invert=True, lsb_only=True))
    b.arith(ArithUop("wr", a=RowRef("vd", 0), masked=True, data_in=DataIn("ones")))
    # Restore where a borrow occurred: R += D.
    b.arith(ArithUop("mask_carry", invert=False))
    set_carry(b, 0)
    add_sweep(b, "vm", "vs2", "vm", segments, counter="seg1", masked=True)
    b.emit(control=ControlUop(kind="bnz", counter="bit1", target=loop))

    if op in ("rem", "remu"):
        copy_sweep(b, "vm", "vd", segments)  # remainder out
    return b.build()
