"""Addition and subtraction macro-operations (Figure 4a).

``add`` is the canonical bit-hybrid sweep: one bit-line compute plus one
write-back per segment, with the inter-segment carry rippling through the
spare-shifter flip-flop (XRegister in bit-serial mode).

``sub`` computes ``a + ~b + 1``: the second operand is complemented in
place, added with carry-in 1, and restored afterwards — bit-line compute
only produces symmetric functions of the operands, so the complement must
be materialised.  ``vd`` must therefore not alias ``vs2``.
"""

from __future__ import annotations

from ..program import MicroProgram, ProgramBuilder
from .common import add_sweep, complement_sweep, load_mask_from_vreg, set_carry


def _segments(factor: int, element_bits: int) -> int:
    return element_bits // factor


def generate_add(factor: int, element_bits: int, masked: bool = False) -> MicroProgram:
    segments = _segments(factor, element_bits)
    b = ProgramBuilder(f"add/{factor}" + ("/m" if masked else ""))
    if masked:
        load_mask_from_vreg(b)
    set_carry(b, 0)
    add_sweep(b, "vs1", "vs2", "vd", segments, masked=masked)
    return b.build()


def _sub_like(name: str, factor: int, element_bits: int, minuend: str,
              subtrahend: str, masked: bool) -> MicroProgram:
    segments = _segments(factor, element_bits)
    b = ProgramBuilder(name)
    if masked:
        load_mask_from_vreg(b)
    complement_sweep(b, subtrahend, subtrahend, segments, counter="seg1")
    set_carry(b, 1)
    add_sweep(b, minuend, subtrahend, "vd", segments, masked=masked)
    # Self-restoring: complement the subtrahend back.
    complement_sweep(b, subtrahend, subtrahend, segments, counter="seg1")
    return b.build()


def generate_sub(factor: int, element_bits: int, masked: bool = False) -> MicroProgram:
    """``vd = vs1 - vs2`` (vd must not alias vs2)."""
    name = f"sub/{factor}" + ("/m" if masked else "")
    return _sub_like(name, factor, element_bits, "vs1", "vs2", masked)


def generate_rsub(factor: int, element_bits: int, masked: bool = False) -> MicroProgram:
    """``vd = vs2 - vs1`` (vd must not alias vs1)."""
    name = f"rsub/{factor}" + ("/m" if masked else "")
    return _sub_like(name, factor, element_bits, "vs2", "vs1", masked)
