"""Shift macro-operations (Section III-B/C).

Scalar-amount shifts (``vx`` forms) are specialised by the VSU for the
known amount: whole segments move as masked row copies, the sub-segment
remainder as one-bit sweeps through the constant shifter with the spare
shifter ferrying bits across segment boundaries.

Variable shifts (``vv`` forms) use binary decomposition of the per-element
amount: for each bit ``i`` of the amount, the mask latches are loaded with
that bit (via the XRegister walk) and ``2^i`` worth of shifting is applied
*conditionally* — one-bit constant-shifter steps while ``2^i < n``, whole
conditional segment copies once ``2^i >= n``.  This segment-granularity
path is why bit-hybrid shifts beat bit-parallel ones (Section III-C).
"""

from __future__ import annotations

from ...errors import MicroProgramError
from ..program import MicroProgram, ProgramBuilder
from ..uop import ArithUop, CounterSeg, DataIn, RowRef
from .common import copy_sweep, shift1_sweep


def _seg_move(b: ProgramBuilder, slot_src: str, slot_dst: str, segments: int,
              by: int, left: bool, masked: bool, counter: str = "seg0",
              zero_counter: str = "seg1") -> None:
    """Move ``slot_src`` into ``slot_dst`` displaced by ``by`` whole
    segments, zero-filling the vacated segments."""
    span = segments - by
    if left:
        dst = RowRef(slot_dst, CounterSeg(counter, base=segments - 1, step=-1))
        src = RowRef(slot_src, CounterSeg(counter, base=segments - 1 - by, step=-1))
    else:
        dst = RowRef(slot_dst, CounterSeg(counter, base=0, step=1))
        src = RowRef(slot_src, CounterSeg(counter, base=by, step=1))
    if span > 0:
        b.sweep(counter, span, [
            ArithUop("blc", a=src, b=src),
            ArithUop("wb", dest=dst, src="and", masked=masked),
        ])
    fill = min(by, segments)
    if left:
        fill_ref = RowRef(slot_dst, CounterSeg(zero_counter, base=0, step=1))
    else:
        fill_ref = RowRef(slot_dst, CounterSeg(zero_counter, base=segments - fill, step=1))
    b.sweep(zero_counter, fill, [
        ArithUop("wr", a=fill_ref, masked=masked, data_in=DataIn("zeros")),
    ])


def _seed_sign(b: ProgramBuilder, slot: str, segments: int) -> None:
    """Load the spare-shifter ferry bit with each group's sign bit."""
    top = RowRef(slot, segments - 1)
    b.arith(ArithUop("blc", a=top, b=top))
    b.arith(ArithUop("wb", dest="link", src="and"))


def generate_shift_scalar(factor: int, element_bits: int, op: str = "sll",
                          amount: int = 0) -> MicroProgram:
    """``vd = vs1 <op> amount`` with a compile-time-known scalar amount."""
    if op not in ("sll", "srl", "sra"):
        raise MicroProgramError(f"unknown shift op {op!r}")
    segments = element_bits // factor
    amount &= element_bits - 1
    b = ProgramBuilder(f"{op}/{factor}/{amount}")
    if amount == 0:
        copy_sweep(b, "vs1", "vd", segments)
        return b.build()

    whole, rest = divmod(amount, factor)
    if op == "sra":
        # Arithmetic shifts keep sign replication simple: copy, then one-bit
        # sweeps each seeded with the current sign bit.
        copy_sweep(b, "vs1", "vd", segments)
        for _ in range(amount):
            _seed_sign(b, "vd", segments)
            shift1_sweep(b, "vd", segments, left=False, clear_link=False)
        return b.build()

    left = op == "sll"
    if whole:
        _seg_move(b, "vs1", "vd", segments, by=whole, left=left, masked=False)
    else:
        copy_sweep(b, "vs1", "vd", segments)
    for _ in range(rest):
        shift1_sweep(b, "vd", segments, left=left)
    return b.build()


def generate_shift_variable(factor: int, element_bits: int,
                            op: str = "sll") -> MicroProgram:
    """``vd = vs1 <op> vs2`` with per-element amounts (binary decomposition).

    Runs a data-independent worst case: every bit position of the amount is
    visited and applied conditionally, which is what lock-step SIMD
    execution requires.
    """
    if op not in ("sll", "srl", "sra"):
        raise MicroProgramError(f"unknown shift op {op!r}")
    segments = element_bits // factor
    shamt_bits = element_bits.bit_length() - 1  # 5 for 32-bit elements
    b = ProgramBuilder(f"{op}v/{factor}")
    copy_sweep(b, "vs1", "vd", segments)
    left = op == "sll"
    for i in range(shamt_bits):
        # Load mask <- bit i of the per-element amount (vs2).
        seg, pos = divmod(i, factor)
        amt = RowRef("vs2", seg)
        b.arith(ArithUop("blc", a=amt, b=amt))
        b.arith(ArithUop("wb", dest="xreg", src="and"))
        for _ in range(pos + 1):
            b.arith(ArithUop("mask_shft"))
        step = 1 << i
        if op == "sra" or step < factor:
            for _ in range(step):
                if op == "sra":
                    _seed_sign(b, "vd", segments)
                    shift1_sweep(b, "vd", segments, left=False,
                                 conditional=True, masked=True, clear_link=False)
                else:
                    shift1_sweep(b, "vd", segments, left=left,
                                 conditional=True, masked=True)
        else:
            _seg_move(b, "vd", "vd", segments, by=step // factor, left=left,
                      masked=True)
    return b.build()
