"""Multiplication macro-operation (Figure 4b).

Predicated summation, MSB-first: for every bit of the multiplier (walked
from the most-significant bit via the XRegister), the accumulator is
doubled and the multiplicand is conditionally added::

    vd = 0
    for each multiplier bit, MSB first:
        vd = (vd + vd) + (bit ? vs1 : 0)

The MSB-first walk is what lets the product accumulate *in place* in
``vd`` — no shifted-multiplicand scratch register is needed, so the full
32-register file stays resident (Table III's EVE-4 geometry depends on
this).  ``vd`` must not alias either source.

The doubling exploits the adder directly: ``blc(P, P)`` senses generate =
P and propagate = 0, so the Manchester chain yields ``2P`` with the
inter-segment carry rippling through the spare flip-flop — two μops per
segment instead of a three-μop shifter sweep.

The outer loop iterates the multiplier's segments (MSB segment first,
loaded into the XRegister); the inner loop walks the segment's bits.  Cost
per bit is one mask load, one doubling sweep and one masked add sweep, so
the latency scales with ``element_bits * segments`` — thousands of cycles
for bit-serial, a few hundred for bit-parallel, matching Figure 2.
"""

from __future__ import annotations

from ..program import MicroProgram, ProgramBuilder
from ..uop import ArithUop, ControlUop, CounterSeg, CounterUop, RowRef
from .common import add_sweep, set_carry, zero_sweep


def generate_mul(factor: int, element_bits: int, high: bool = False) -> MicroProgram:
    """``vd = vs1 * vs2`` (low half).

    ``high=True`` builds the same control structure (the timing proxy used
    for ``vmulh``/``vmulhu``); its bit-exact result is still the low half,
    which the functional engine refuses to use (see the ROM).
    """
    segments = element_bits // factor
    b = ProgramBuilder(f"mul{'h' if high else ''}/{factor}")
    zero_sweep(b, "vd", segments, counter="seg0")

    # Outer loop: segments of the multiplier, most significant first.
    b.init("seg1", segments)
    outer = b.label()
    msb_seg = RowRef("vs2", CounterSeg("seg1", base=segments - 1, step=-1))
    b.emit(counter=CounterUop(kind="decr", counter="seg1"),
           arith=ArithUop("blc", a=msb_seg, b=msb_seg))
    b.arith(ArithUop("wb", dest="xreg", src="and"))

    # Inner loop: bits of the segment, MSB first via the left mask walk.
    b.init("bit0", factor)
    inner = b.label()
    b.emit(counter=CounterUop(kind="decr", counter="bit0"),
           arith=ArithUop("mask_shftl"))
    set_carry(b, 0)
    add_sweep(b, "vd", "vd", "vd", segments, counter="seg0")  # vd = 2*vd
    set_carry(b, 0)
    add_sweep(b, "vd", "vs1", "vd", segments, counter="seg0", masked=True)
    b.emit(control=ControlUop(kind="bnz", counter="bit0", target=inner))
    b.emit(control=ControlUop(kind="bnz", counter="seg1", target=outer))
    return b.build()
