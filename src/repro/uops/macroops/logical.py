"""Bit-wise logic, moves, splats, and the merge (select) macro-operation.

Logic operations are the cheapest micro-programs: the bit-line compute
produces and/nand/or/nor directly and the XOR layer adds xor/xnor, so each
segment costs exactly one blc plus one write-back.
"""

from __future__ import annotations

from ...errors import MicroProgramError
from ..program import MicroProgram, ProgramBuilder
from ..uop import ArithUop, DataIn
from .common import copy_sweep, load_mask_from_vreg, seg_ref

#: Logic op name -> write-back source fed by the bit-line compute stack.
_LOGIC_SOURCES = {
    "and": "and", "or": "or", "xor": "xor",
    "nand": "nand", "nor": "nor", "xnor": "xnor",
}


def generate_logic(factor: int, element_bits: int, op: str = "and",
                   masked: bool = False) -> MicroProgram:
    """``vd = vs1 <op> vs2`` for the six bit-line logic functions, plus
    ``not`` (complement of vs1, implemented as nand with itself)."""
    segments = element_bits // factor
    b = ProgramBuilder(f"{op}/{factor}" + ("/m" if masked else ""))
    if masked:
        load_mask_from_vreg(b)
    if op == "not":
        b.sweep("seg0", segments, [
            ArithUop("blc", a=seg_ref("vs1"), b=seg_ref("vs1")),
            ArithUop("wb", dest=seg_ref("vd"), src="nand", masked=masked),
        ])
        return b.build()
    try:
        src = _LOGIC_SOURCES[op]
    except KeyError:
        raise MicroProgramError(f"unknown logic op {op!r}") from None
    b.sweep("seg0", segments, [
        ArithUop("blc", a=seg_ref("vs1"), b=seg_ref("vs2")),
        ArithUop("wb", dest=seg_ref("vd"), src=src, masked=masked),
    ])
    return b.build()


def generate_move(factor: int, element_bits: int, masked: bool = False) -> MicroProgram:
    """``vd = vs1`` (register copy)."""
    segments = element_bits // factor
    b = ProgramBuilder(f"move/{factor}" + ("/m" if masked else ""))
    if masked:
        load_mask_from_vreg(b)
    copy_sweep(b, "vs1", "vd", segments, masked=masked)
    return b.build()


def generate_splat(factor: int, element_bits: int, masked: bool = False) -> MicroProgram:
    """``vd = scalar`` broadcast via the data-in port, segment by segment."""
    segments = element_bits // factor
    b = ProgramBuilder(f"splat/{factor}" + ("/m" if masked else ""))
    if masked:
        load_mask_from_vreg(b)
    b.sweep("seg0", segments, [
        ArithUop("wr", a=seg_ref("vd"), masked=masked,
                 data_in=DataIn("scalar_seg", seg_ref("vd").seg)),
    ])
    return b.build()


def generate_merge(factor: int, element_bits: int) -> MicroProgram:
    """``vd = vm ? vs1 : vs2`` — copy vs2, then overwrite flagged groups."""
    segments = element_bits // factor
    b = ProgramBuilder(f"merge/{factor}")
    copy_sweep(b, "vs2", "vd", segments, counter="seg0")
    load_mask_from_vreg(b)
    copy_sweep(b, "vs1", "vd", segments, counter="seg1", masked=True)
    return b.build()
