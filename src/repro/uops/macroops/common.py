"""Shared micro-program building blocks.

All helpers emit into a :class:`~repro.uops.program.ProgramBuilder`.  The
counters used follow a convention: ``seg0``/``seg1`` drive segment sweeps,
``bit0``/``bit1`` drive within-segment bit loops, and ``seg2`` is reserved
for outer loops of composite operations.
"""

from __future__ import annotations

from ..program import ProgramBuilder
from ..uop import ArithUop, CounterSeg, DataIn, RowRef


def seg_ref(slot: str, counter: str = "seg0", base: int = 0, step: int = 1) -> RowRef:
    return RowRef(slot, CounterSeg(counter, base=base, step=step))


def copy_sweep(b: ProgramBuilder, src: str, dst: str, segments: int,
               counter: str = "seg0", masked: bool = False) -> None:
    """``dst[t] = src[t]`` for every segment (a blc/wb pair per segment)."""
    a = seg_ref(src, counter)
    d = seg_ref(dst, counter)
    b.sweep(counter, segments, [
        ArithUop("blc", a=a, b=a),
        ArithUop("wb", dest=d, src="and", masked=masked),
    ])


def zero_sweep(b: ProgramBuilder, slot: str, segments: int,
               counter: str = "seg0", masked: bool = False) -> None:
    """Write zeros into every segment of ``slot`` via the data-in port."""
    b.sweep(counter, segments, [
        ArithUop("wr", a=seg_ref(slot, counter), masked=masked,
                 data_in=DataIn("zeros")),
    ])


def complement_sweep(b: ProgramBuilder, src: str, dst: str, segments: int,
                     counter: str = "seg0") -> None:
    """``dst[t] = ~src[t]`` (in place when ``src == dst``)."""
    a = seg_ref(src, counter)
    d = seg_ref(dst, counter)
    b.sweep(counter, segments, [
        ArithUop("blc", a=a, b=a),
        ArithUop("wb", dest=d, src="nand"),
    ])


def set_carry(b: ProgramBuilder, value: int) -> None:
    """Preset the inter-segment carry flip-flop to 0 or 1."""
    kind = "ones" if value else "zeros"
    b.arith(ArithUop("wb", dest="carry", src="data_in", data_in=DataIn(kind)))


def add_sweep(b: ProgramBuilder, x: str, y: str, dst: str, segments: int,
              counter: str = "seg0", masked: bool = False) -> None:
    """``dst[t] = x[t] + y[t]`` rippling the carry through the spare FF.

    The caller must preset the carry (:func:`set_carry`) — carry-in 1 plus a
    complemented operand is how subtraction is built.
    """
    b.sweep(counter, segments, [
        ArithUop("blc", a=seg_ref(x, counter), b=seg_ref(y, counter)),
        ArithUop("wb", dest=seg_ref(dst, counter), src="add", masked=masked),
    ])


def load_mask_from_vreg(b: ProgramBuilder, slot: str = "vm") -> None:
    """Load the mask latches from a 0/1-valued mask register (its LSB)."""
    ref = RowRef(slot, 0)
    b.arith(ArithUop("blc", a=ref, b=ref))
    b.arith(ArithUop("wb", dest="mask_groups", src="and"))


def set_mask_pattern(b: ProgramBuilder, kind: str) -> None:
    """Load the per-column mask latches with a VSU-driven pattern."""
    b.arith(ArithUop("wb", dest="mask", src="data_in", data_in=DataIn(kind)))


def flip_rows_masked(b: ProgramBuilder, refs) -> None:
    """Complement the mask-selected columns of each listed row in place."""
    for ref in refs:
        b.arith(ArithUop("blc", a=ref, b=ref))
        b.arith(ArithUop("wb", dest=ref, src="nand", masked=True))


def materialize_mask(b: ProgramBuilder, segments: int,
                     counter: str = "seg0") -> None:
    """Write the current group mask into ``vd`` as 0/1 element values.

    Clears all of ``vd`` then writes a 1 into the LSB column of flagged
    groups.  The caller must ensure the mask latches hold the result
    (zeroing uses the data-in port and does not disturb them).
    """
    zero_sweep(b, "vd", segments, counter)
    b.arith(ArithUop("wr", a=RowRef("vd", 0), masked=True,
                     data_in=DataIn("lsb_ones")))


def shift1_sweep(b: ProgramBuilder, slot: str, segments: int, left: bool,
                 counter: str = "seg0", conditional: bool = False,
                 masked: bool = False, clear_link: bool = True) -> None:
    """Shift ``slot`` by one bit across all its segments, in place.

    Left shifts walk segments LSB→MSB, right shifts MSB→LSB, with the spare
    shifter ferrying the bit across segment boundaries.  With
    ``conditional``/``masked`` set, only mask-flagged groups shift (the
    variable-shift building block).
    """
    if clear_link:
        b.arith(ArithUop("sclr"))
    if left:
        ref = seg_ref(slot, counter)
        shift = ArithUop("lshift", conditional=conditional)
    else:
        ref = seg_ref(slot, counter, base=segments - 1, step=-1)
        shift = ArithUop("rshift", conditional=conditional)
    b.sweep(counter, segments, [
        ArithUop("rd", a=ref),
        shift,
        ArithUop("wb", dest=ref, src="shift", masked=masked),
    ])


def compare_core(b: ProgramBuilder, x: str, y: str, segments: int,
                 signed: bool) -> None:
    """Leave the group carry flags holding ``x >= y``; destroys ``vd``.

    Computes the carry-out of ``x + ~y + 1`` (unsigned greater-or-equal).
    For signed comparison both operands have their sign bits flipped first
    (the bias trick) via surgical masked complements of the MSB column; the
    flip of ``x`` is undone afterwards, ``~y`` lives in ``vd`` so ``y`` is
    never touched.
    """
    complement_sweep(b, y, "vd", segments)
    if signed:
        set_mask_pattern(b, "msb_ones")
        top_vd = RowRef("vd", segments - 1)
        top_x = RowRef(x, segments - 1)
        flip_rows_masked(b, [top_vd, top_x])
    set_carry(b, 1)
    add_sweep(b, x, "vd", "vd", segments)
    if signed:
        # Mask still holds the MSB pattern; restore x's sign bit.
        flip_rows_masked(b, [RowRef(x, segments - 1)])
