"""Micro-program execution: bit-exact against an EVE SRAM, or timing-only.

The engine models the VSU's per-cycle behaviour: each cycle it fetches one
VLIW tuple and executes its counter μop, arithmetic μop, and control μop in
order (Section IV-B).  Arithmetic μops are dispatched to the
:class:`~repro.sram.EveSram`; with ``sram=None`` they are skipped, which is
the paper's function/timing separation — control flow is data-independent,
so the cycle count is exact either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import MicroExecutionError
from ..faults.inject import NULL_FAULTS
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.tracer import NULL_TRACER, SpanTracer
from ..sram.eve_sram import EveSram
from ..sram.layout import RegisterLayout
from .counters import CounterFile
from .program import MicroProgram
from .uop import ArithUop, ControlUop, CounterSeg, CounterUop, DataIn, RowRef, SegSpec

#: Default watchdog limit: no macro-op on a 32-bit element comes near this.
MAX_CYCLES = 1_000_000


@dataclass
class Binding:
    """Resolution context for one macro-operation instance."""

    layout: RegisterLayout
    regs: Dict[str, int] = field(default_factory=dict)
    scalar: int = 0

    def vreg(self, slot: str) -> int:
        try:
            return self.regs[slot]
        except KeyError:
            raise MicroExecutionError(f"register slot {slot!r} not bound") from None


class MicroEngine:
    """Executes micro-programs; owns a counter file across invocations.

    ``max_cycles`` is the watchdog: the dynamic backstop to the static
    termination check (lint rule 5).  A program still running after that
    many cycles raises :class:`MicroExecutionError` instead of hanging.
    """

    def __init__(self, counters: Optional[CounterFile] = None,
                 max_cycles: int = MAX_CYCLES,
                 tracer: Optional[SpanTracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 faults=None) -> None:
        if max_cycles <= 0:
            raise MicroExecutionError("watchdog limit must be positive")
        self.counters = counters or CounterFile()
        self.max_cycles = max_cycles
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.faults = faults if faults is not None else NULL_FAULTS
        self.metrics.reserve("uprog", "MicroEngine")
        #: Cumulative cycles across invocations — the engine's own
        #: timeline, which the tracer's "uProg" track is plotted on.
        self.total_cycles = 0

    # -- resolution helpers ----------------------------------------------

    def _seg_index(self, seg: SegSpec) -> int:
        if isinstance(seg, CounterSeg):
            counter = self.counters[seg.counter]
            return seg.base + seg.step * counter.index
        return int(seg)

    def _row(self, ref: RowRef, binding: Binding) -> int:
        return binding.layout.row_of(binding.vreg(ref.reg), self._seg_index(ref.seg))

    def _data_in(self, spec: DataIn, binding: Binding, cols: int) -> np.ndarray:
        factor = binding.layout.factor
        pattern = np.zeros(cols, dtype=np.uint8)
        if spec.kind == "zeros":
            return pattern
        if spec.kind == "ones":
            pattern[:] = 1
            return pattern
        if spec.kind == "lsb_ones":
            pattern[0::factor] = 1
            return pattern
        if spec.kind == "msb_ones":
            pattern[factor - 1::factor] = 1
            return pattern
        # scalar_seg: broadcast one segment of the scalar operand.
        seg = self._seg_index(spec.seg)
        unsigned = binding.scalar & ((1 << binding.layout.element_bits) - 1)
        segment = (unsigned >> (seg * factor)) & ((1 << factor) - 1)
        for j in range(factor):
            if (segment >> j) & 1:
                pattern[j::factor] = 1
        return pattern

    # -- μop dispatch -----------------------------------------------------

    def _apply_counter(self, uop: CounterUop) -> None:
        if uop.kind == "none":
            return
        counter = self.counters[uop.counter]
        if uop.kind == "init":
            counter.init(uop.value)
        elif uop.kind == "decr":
            counter.decr()
        else:
            counter.incr()

    def _apply_arith(self, uop: ArithUop, sram: EveSram, binding: Binding) -> None:
        if uop.data_in is not None:
            sram.set_data_in(self._data_in(uop.data_in, binding, sram.cols))
        kind = uop.kind
        if kind == "nop":
            return
        if kind == "rd":
            sram.u_rd(self._row(uop.a, binding))
        elif kind == "wr":
            sram.u_wr(self._row(uop.a, binding), masked=uop.masked)
        elif kind == "blc":
            sram.u_blc(self._row(uop.a, binding), self._row(uop.b, binding))
        elif kind == "wb":
            dest = uop.dest
            if isinstance(dest, RowRef):
                dest = self._row(dest, binding)
            sram.u_wb(dest, uop.src, masked=uop.masked)
        elif kind == "lshift":
            sram.u_lshift(conditional=uop.conditional)
        elif kind == "rshift":
            sram.u_rshift(conditional=uop.conditional)
        elif kind == "lrot":
            sram.u_lrotate(conditional=uop.conditional)
        elif kind == "rrot":
            sram.u_rrotate(conditional=uop.conditional)
        elif kind == "mask_shft":
            sram.u_mask_shft()
        elif kind == "mask_shftl":
            sram.u_mask_shftl()
        elif kind == "mask_carry":
            sram.u_mask_from_carry(invert=uop.invert, lsb_only=uop.lsb_only)
        elif kind == "sclr":
            sram.u_spare_clear()
        else:  # pragma: no cover - guarded by ArithUop validation
            raise MicroExecutionError(f"unhandled arithmetic μop {kind!r}")

    def _apply_control(self, uop: ControlUop, program: MicroProgram,
                       next_upc: int) -> tuple[int, bool]:
        """Returns (next μpc, returned?)."""
        if uop.kind == "none":
            return next_upc, False
        if uop.kind == "ret":
            return next_upc, True
        if uop.kind == "jmp":
            return program.target(uop.target), False
        counter = self.counters[uop.counter]
        if uop.kind == "bnz":
            if counter.consume_zero():
                return next_upc, False  # wrapped: fall through, flag consumed
            return program.target(uop.target), False
        # bnd: branch when a binary decade was reached; consume on taken.
        if counter.decade_flag:
            counter.consume_decade()
            return program.target(uop.target), False
        return next_upc, False

    # -- main loop -------------------------------------------------------------

    def run(self, program: MicroProgram, sram: Optional[EveSram] = None,
            binding: Optional[Binding] = None,
            histogram: Optional[Dict[str, int]] = None,
            max_cycles: Optional[int] = None) -> int:
        """Execute ``program``; returns the cycle count.

        With ``sram=None`` the arithmetic μops are skipped (timing-only
        mode).  A bound SRAM requires a binding for address resolution.
        ``histogram`` (if given) accumulates dynamic arithmetic-μop counts
        by kind — control flow is data-independent, so the histogram is
        exact even in timing-only mode (the energy model uses this).
        ``max_cycles`` overrides the engine's watchdog limit for this run.
        """
        if sram is not None and binding is None:
            raise MicroExecutionError("bit-exact execution requires a binding")
        if self.faults.enabled:
            self.faults.on_program(program.name)
        limit = self.max_cycles if max_cycles is None else max_cycles
        upc = 0
        cycles = 0
        n = len(program.tuples)
        while upc < n:
            tup = program.tuples[upc]
            cycles += 1
            if cycles > limit:
                raise MicroExecutionError(
                    f"{program.name}: watchdog tripped after {limit} cycles "
                    "(non-terminating micro-program?)")
            if tup.counter is not None:
                self._apply_counter(tup.counter)
            if tup.arith is not None:
                if histogram is not None:
                    histogram[tup.arith.kind] = histogram.get(tup.arith.kind, 0) + 1
                if sram is not None:
                    self._apply_arith(tup.arith, sram, binding)
            next_upc = upc + 1
            if tup.control is not None:
                next_upc, returned = self._apply_control(tup.control, program, next_upc)
                if returned:
                    break
            upc = next_upc
        begin = self.total_cycles
        self.total_cycles += cycles
        if self.tracer.enabled:
            self.tracer.span("uProg", program.name, begin, self.total_cycles,
                             cycles=cycles)
        if self.metrics.enabled:
            self.metrics.counter("uprog.invocations").inc()
            self.metrics.histogram("uprog.cycles").observe(cycles)
        return cycles

    def run_block(self, block, sram: Optional[EveSram] = None,
                  histogram: Optional[Dict[str, int]] = None) -> int:
        """Execute a block of ``(program, binding)`` pairs in order.

        Block-at-a-time entry point: callers assemble the macro-op
        sequence for one architectural operation (or a scheduled pack of
        them) and submit it whole instead of driving :meth:`run` per
        macro.  Returns the block's total cycle count; per-program
        semantics (watchdog, fault hooks, tracer spans) are exactly those
        of :meth:`run` since programs execute back to back on the same
        counter file and SRAM.
        """
        cycles = 0
        for program, binding in block:
            cycles += self.run(program, sram, binding, histogram=histogram)
        return cycles
