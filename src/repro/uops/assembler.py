"""Textual micro-program assembler and disassembler (Table II syntax).

Micro-programs can be written in the paper's listing style: one VLIW tuple
per line with the three slots (counter | arithmetic | control) separated
by ``|``, ``-`` for an empty slot, labels on their own line ending with
``:``, and ``;`` starting a comment.  Figure 4(a)'s integer addition::

    ; vd = vs1 + vs2, rippling the carry through the spare flip-flop
        -          | wb carry, data_in <zeros | -
        init seg0, 8
    loop:
        decr seg0  | blc vs1[seg0], vs2[seg0] | -
        -          | wb vd[seg0], add         | bnz seg0, loop
        -          | nop                      | ret

Row operands are ``slot[seg]`` where ``seg`` is a literal (``vd[3]``), a
counter (``vd[seg0]``), a counter plus offset (``vd[seg0+2]``), or a
reversed walk (``vd[7-seg0]``).  Write-back destinations may also be the
latches ``mask``, ``mask_groups``, ``xreg``, ``carry``, ``link``.  A
``<pattern`` suffix drives the data-in port (``<zeros``, ``<ones``,
``<lsb``, ``<msb``, ``<scalar[seg0]``).
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..errors import MicroProgramError
from .counters import COUNTER_NAMES
from .program import MicroProgram
from .uop import (
    ArithUop,
    ControlUop,
    CounterSeg,
    CounterUop,
    DataIn,
    RowRef,
    SegSpec,
    UopTuple,
)

_LATCH_DESTS = ("mask", "mask_groups", "xreg", "carry", "link")
_SEG_RE = re.compile(
    r"^(?:(?P<lit>\d+)"
    r"|(?P<cnt>[a-z]+\d)(?:\+(?P<off>\d+))?"
    r"|(?P<base>\d+)-(?P<rcnt>[a-z]+\d))$")
_ROW_RE = re.compile(r"^(?P<slot>v[smd][12]?)\[(?P<seg>[^\]]+)\]$")
_DATA_IN_RE = re.compile(r"<\s*(?P<kind>zeros|ones|lsb|msb|scalar\[[^\]]+\])")

_DATA_IN_KINDS = {"zeros": "zeros", "ones": "ones",
                  "lsb": "lsb_ones", "msb": "msb_ones"}


def _parse_seg(text: str) -> SegSpec:
    text = text.strip()
    match = _SEG_RE.match(text)
    if not match:
        raise MicroProgramError(f"bad segment spec {text!r}")
    if match.group("lit") is not None:
        return int(match.group("lit"))
    if match.group("cnt") is not None:
        counter = match.group("cnt")
        if counter not in COUNTER_NAMES:
            raise MicroProgramError(f"unknown counter {counter!r}")
        offset = int(match.group("off") or 0)
        return CounterSeg(counter, base=offset, step=1)
    counter = match.group("rcnt")
    if counter not in COUNTER_NAMES:
        raise MicroProgramError(f"unknown counter {counter!r}")
    return CounterSeg(counter, base=int(match.group("base")), step=-1)


def _parse_row(text: str) -> RowRef:
    text = text.strip()
    match = _ROW_RE.match(text)
    if not match:
        raise MicroProgramError(f"bad row operand {text!r}")
    return RowRef(match.group("slot"), _parse_seg(match.group("seg")))


def _split_data_in(text: str):
    match = _DATA_IN_RE.search(text)
    if not match:
        return text.strip(), None
    kind = match.group("kind")
    rest = (text[:match.start()] + text[match.end():]).strip().rstrip(",")
    if kind.startswith("scalar["):
        return rest, DataIn("scalar_seg", _parse_seg(kind[7:-1]))
    return rest, DataIn(_DATA_IN_KINDS[kind])


def _parse_arith(text: str) -> Optional[ArithUop]:
    text = text.strip()
    if text in ("-", ""):
        return None
    text, data_in = _split_data_in(text)
    masked = False
    if text.endswith(" masked"):
        masked, text = True, text[:-7].rstrip()
    parts = text.split(None, 1)
    op, rest = parts[0], (parts[1] if len(parts) > 1 else "")
    if op == "nop":
        return ArithUop("nop", data_in=data_in)
    if op == "rd":
        return ArithUop("rd", a=_parse_row(rest))
    if op == "wr":
        return ArithUop("wr", a=_parse_row(rest), masked=masked,
                        data_in=data_in)
    if op == "blc":
        a_text, b_text = (s.strip() for s in rest.split(","))
        return ArithUop("blc", a=_parse_row(a_text), b=_parse_row(b_text))
    if op == "wb":
        dest_text, src = (s.strip() for s in rest.rsplit(",", 1))
        dest = dest_text if dest_text in _LATCH_DESTS else _parse_row(dest_text)
        return ArithUop("wb", dest=dest, src=src, masked=masked,
                        data_in=data_in)
    if op in ("lshift", "rshift", "lrot", "rrot"):
        conditional = rest.strip() != "uncond"
        return ArithUop(op, conditional=conditional)
    if op in ("mask_shft", "mask_shftl", "sclr"):
        return ArithUop(op)
    if op == "mask_carry":
        flags = rest.split()
        return ArithUop("mask_carry", invert="inv" in flags,
                        lsb_only="lsb" in flags)
    raise MicroProgramError(f"unknown arithmetic μop {op!r}")


def _check_counter(name: str) -> str:
    if name not in COUNTER_NAMES:
        raise MicroProgramError(f"unknown counter {name!r}")
    return name


def _parse_counter(text: str) -> Optional[CounterUop]:
    text = text.strip()
    if text in ("-", ""):
        return None
    parts = text.replace(",", " ").split()
    if parts[0] == "init":
        if len(parts) != 3:
            raise MicroProgramError(f"bad init: {text!r}")
        return CounterUop("init", counter=_check_counter(parts[1]),
                          value=int(parts[2]))
    if parts[0] in ("decr", "incr"):
        if len(parts) != 2:
            raise MicroProgramError(f"bad {parts[0]}: {text!r}")
        return CounterUop(parts[0], counter=_check_counter(parts[1]))
    raise MicroProgramError(f"unknown counter μop {parts[0]!r}")


def _parse_control(text: str) -> Optional[ControlUop]:
    text = text.strip()
    if text in ("-", ""):
        return None
    parts = text.replace(",", " ").split()
    if parts[0] == "ret":
        return ControlUop("ret")
    if parts[0] == "jmp":
        return ControlUop("jmp", target=parts[1])
    if parts[0] in ("bnz", "bnd"):
        if len(parts) != 3:
            raise MicroProgramError(f"bad {parts[0]}: {text!r}")
        return ControlUop(parts[0], counter=_check_counter(parts[1]),
                          target=parts[2])
    raise MicroProgramError(f"unknown control μop {parts[0]!r}")


def assemble(source: str, name: str = "asm") -> MicroProgram:
    """Assemble Table II-style text into a :class:`MicroProgram`."""
    tuples: List[UopTuple] = []
    labels = {}
    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label or label in labels:
                raise MicroProgramError(f"bad or duplicate label {label!r}")
            labels[label] = len(tuples)
            continue
        slots = [s for s in line.split("|")]
        if len(slots) == 1:
            # Single-slot shorthand: classify by mnemonic.
            text = slots[0].strip()
            op = text.split(None, 1)[0]
            if op in ("init", "decr", "incr"):
                slots = [text, "-", "-"]
            elif op in ("bnz", "bnd", "jmp", "ret"):
                slots = ["-", "-", text]
            else:
                slots = ["-", text, "-"]
        if len(slots) != 3:
            raise MicroProgramError(
                f"expected 3 slots (counter | arith | control): {raw_line!r}")
        tuples.append(UopTuple(
            counter=_parse_counter(slots[0]),
            arith=_parse_arith(slots[1]),
            control=_parse_control(slots[2]),
        ))
    return MicroProgram(name, tuples, labels)


# -- disassembly --------------------------------------------------------------


def _seg_str(seg: SegSpec) -> str:
    if isinstance(seg, CounterSeg):
        if seg.step == -1:
            return f"{seg.base}-{seg.counter}"
        if seg.base:
            return f"{seg.counter}+{seg.base}"
        return seg.counter
    return str(seg)


def _row_str(ref: RowRef) -> str:
    return f"{ref.reg}[{_seg_str(ref.seg)}]"


def _data_in_str(data_in: Optional[DataIn]) -> str:
    if data_in is None:
        return ""
    if data_in.kind == "scalar_seg":
        return f" <scalar[{_seg_str(data_in.seg)}]"
    reverse = {v: k for k, v in _DATA_IN_KINDS.items()}
    return f" <{reverse[data_in.kind]}"


def _arith_str(uop: Optional[ArithUop]) -> str:
    if uop is None:
        return "-"
    masked = " masked" if uop.masked else ""
    suffix = _data_in_str(uop.data_in)
    if uop.kind == "rd":
        return f"rd {_row_str(uop.a)}"
    if uop.kind == "wr":
        return f"wr {_row_str(uop.a)}{masked}{suffix}"
    if uop.kind == "blc":
        return f"blc {_row_str(uop.a)}, {_row_str(uop.b)}"
    if uop.kind == "wb":
        dest = uop.dest if isinstance(uop.dest, str) else _row_str(uop.dest)
        return f"wb {dest}, {uop.src}{masked}{suffix}"
    if uop.kind in ("lshift", "rshift", "lrot", "rrot"):
        return uop.kind + ("" if uop.conditional else " uncond")
    if uop.kind == "mask_carry":
        flags = (" inv" if uop.invert else "") + (" lsb" if uop.lsb_only else "")
        return "mask_carry" + flags
    return uop.kind + suffix


def _counter_str(uop: Optional[CounterUop]) -> str:
    if uop is None:
        return "-"
    if uop.kind == "init":
        return f"init {uop.counter}, {uop.value}"
    return f"{uop.kind} {uop.counter}"


def _control_str(uop: Optional[ControlUop]) -> str:
    if uop is None:
        return "-"
    if uop.kind == "ret":
        return "ret"
    if uop.kind == "jmp":
        return f"jmp {uop.target}"
    return f"{uop.kind} {uop.counter}, {uop.target}"


def disassemble(program: MicroProgram) -> str:
    """Render a micro-program back into assemble()-compatible text."""
    by_index = {}
    for label, index in program.labels.items():
        by_index.setdefault(index, []).append(label)
    lines = [f"; {program.name}"]
    for i, tup in enumerate(program.tuples):
        for label in by_index.get(i, []):
            lines.append(f"{label}:")
        lines.append("    " + " | ".join([
            _counter_str(tup.counter), _arith_str(tup.arith),
            _control_str(tup.control)]))
    for label in by_index.get(len(program.tuples), []):
        lines.append(f"{label}:")
    return "\n".join(lines)
