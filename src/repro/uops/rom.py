"""The macro-operation ROM (Section V-B).

The VSU holds a ROM with the micro-program for every macro-operation; this
class builds those programs on demand (per parallelization factor),
caches them, and answers cycle counts via timing-only execution — the
control flow of every program is data-independent, so one timing run is
exact for all inputs.

Opcode mapping: the ROM serves the compute macro-ops.  Memory, reduction,
slide, and gather instructions are executed as read/write streams by the
VMU / VRU / VSU and are timed by the engine models instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import IsaError
from ..isa.instructions import VectorInstr
from ..isa.opcodes import OPCODES, OpInfo
from .executor import MicroEngine
from .macroops import GENERATORS
from .program import MicroProgram

#: Opcodes whose timing is a VSU/VMU/VRU stream, not a ROM program.
STREAMED_OPS = frozenset({
    "vle32", "vse32", "vlse32", "vsse32", "vluxei32", "vsuxei32",
    "vredsum", "vredmax", "vredmin", "vredand", "vredor", "vredxor",
    "vrgather", "vslideup", "vslidedown", "vmv.x.s", "vmv.s.x",
    "vsetvl", "vmfence",
})

#: Macro-ops whose bit-exact result is only a timing proxy.
TIMING_PROXIES = frozenset({"mulh", "mulhu"})

#: VCU decompositions (Section V-A: instructions may become *multiple*
#: macro-operations): saturating arithmetic as sequences of base macros.
#: Signed overflow of a+b has sign(t4) with t4 = (a^sum) & ~(a^b); the
#: saturation value is (a >> 31) ^ INT_MAX; a final merge selects.
COMPOSITE_MACROS = {
    "sadd": (
        ("add", {}), ("logic", {"op": "xor"}), ("logic", {"op": "xor"}),
        ("logic", {"op": "not"}), ("logic", {"op": "and"}), ("splat", {}),
        ("compare", {"op": "lt", "signed": True}),
        ("shift_scalar", {"op": "sra", "amount": 31}), ("splat", {}),
        ("logic", {"op": "xor"}), ("merge", {}),
    ),
    "ssub": (
        ("sub", {}), ("logic", {"op": "xor"}), ("logic", {"op": "xor"}),
        ("logic", {"op": "and"}), ("splat", {}),
        ("compare", {"op": "lt", "signed": True}),
        ("shift_scalar", {"op": "sra", "amount": 31}), ("splat", {}),
        ("logic", {"op": "xor"}), ("merge", {}),
    ),
    "saddu": (
        ("add", {}), ("compare", {"op": "lt", "signed": False}),
        ("splat", {}), ("merge", {}),
    ),
    "ssubu": (
        ("sub", {}), ("compare", {"op": "lt", "signed": False}),
        ("splat", {}), ("merge", {}),
    ),
}

#: Opcode-table macro family -> the base macro-op name(s) the ROM must hold
#: for it (``instr_key`` picks between them per instruction form).
_FAMILY_MACROS = {
    "add": ("add", "sub", "rsub"),
    "logic": ("logic",),
    "move": ("move", "splat"),
    "merge": ("merge",),
    "compare": ("compare",),
    "minmax": ("minmax",),
    "shift": ("shift_scalar", "shift_variable"),
    "mul": ("mul",),
    "div": ("div",),
}


def rom_coverage_gaps(opcodes: Optional[Dict[str, OpInfo]] = None) -> List[str]:
    """Macro-operations the opcode table needs but the ROM cannot build.

    Checks every non-streamed opcode's macro family against
    :data:`GENERATORS` and :data:`COMPOSITE_MACROS`, and every composite's
    parts against :data:`GENERATORS`.  Returns human-readable gap names.
    """
    table = OPCODES if opcodes is None else opcodes
    gaps = []
    for name, info in table.items():
        if name in STREAMED_OPS:
            continue
        for macro in _FAMILY_MACROS.get(info.macro, (info.macro,)):
            if macro not in GENERATORS and macro not in COMPOSITE_MACROS:
                gaps.append(f"{name} -> {macro}")
    for name, parts in COMPOSITE_MACROS.items():
        for part, _ in parts:
            if part not in GENERATORS:
                gaps.append(f"{name} (composite) -> {part}")
    return gaps


def _check_rom_coverage() -> None:
    """Import-time fail-fast: a ROM that cannot serve the ISA is a build
    error, not something to discover mid-simulation."""
    gaps = rom_coverage_gaps()
    if gaps:
        raise IsaError(
            "opcode table references macro-operations missing from the ROM: "
            + ", ".join(sorted(set(gaps))))


def rom_specs() -> Tuple[Tuple[str, Dict[str, object]], ...]:
    """Every (macro, params) combination the ROM serves.

    This enumeration is the build path's ground truth: ``instr_key`` only
    produces instances of these specs (shift amounts sample the 0..31
    range).  Strict ROMs, ``repro lint``, and the round-trip tests all
    iterate it.
    """
    specs: List[Tuple[str, Dict[str, object]]] = []
    for masked in (False, True):
        for macro in ("add", "sub", "rsub", "move", "splat"):
            specs.append((macro, {"masked": masked}))
        for op in ("and", "or", "xor", "nand", "nor", "xnor", "not"):
            specs.append(("logic", {"op": op, "masked": masked}))
    specs.append(("merge", {}))
    for op in ("eq", "ne", "lt", "le", "gt", "ge"):
        for signed in (True, False):
            specs.append(("compare", {"op": op, "signed": signed}))
    for op in ("min", "max"):
        for signed in (True, False):
            specs.append(("minmax", {"op": op, "signed": signed}))
    for op in ("sll", "srl", "sra"):
        specs.append(("shift_variable", {"op": op}))
        for amount in (0, 1, 7, 13, 31):
            specs.append(("shift_scalar", {"op": op, "amount": amount}))
    for high in (False, True):
        specs.append(("mul", {"high": high}))
    for op in ("div", "rem", "divu", "remu"):
        specs.append(("div", {"op": op}))
    return tuple(specs)


_LOGIC = {"vand": "and", "vor": "or", "vxor": "xor", "vnot": "not"}
_COMPARE = {"vmseq": "eq", "vmsne": "ne", "vmslt": "lt",
            "vmsle": "le", "vmsgt": "gt", "vmsge": "ge"}
_MINMAX = {"vmin": ("min", True), "vmax": ("max", True),
           "vminu": ("min", False), "vmaxu": ("max", False)}
_SHIFT = {"vsll": "sll", "vsrl": "srl", "vsra": "sra"}
_DIV = {"vdiv": "div", "vrem": "rem", "vdivu": "divu", "vremu": "remu"}


def instr_key(instr: VectorInstr) -> Optional[Tuple[str, Tuple[Tuple[str, object], ...]]]:
    """Map a vector instruction to its (macro, params) ROM key.

    Returns ``None`` for streamed (non-ROM) instructions.
    """
    op = instr.op
    if op in STREAMED_OPS:
        return None
    if op in ("vadd", "vsub", "vrsub"):
        return op[1:], (("masked", instr.masked),)
    if op == "vid":
        # Index ramp: costed as the "add" half of the historical vmv+vadd
        # pair so viota's cycle accounting is unchanged.
        return "add", (("masked", instr.masked),)
    if op in _LOGIC:
        return "logic", (("op", _LOGIC[op]), ("masked", instr.masked))
    if op == "vmv":
        if instr.vs1 >= 0:
            return "move", (("masked", instr.masked),)
        return "splat", (("masked", instr.masked),)
    if op == "vmerge":
        return "merge", ()
    if op in _COMPARE:
        return "compare", (("op", _COMPARE[op]), ("signed", True))
    if op in _MINMAX:
        mm, signed = _MINMAX[op]
        return "minmax", (("op", mm), ("signed", signed))
    if op in _SHIFT:
        if instr.vs2 >= 0:
            return "shift_variable", (("op", _SHIFT[op]),)
        return "shift_scalar", (("op", _SHIFT[op]), ("amount", instr.scalar & 31))
    if op in ("vmul", "vmulh", "vmulhu"):
        return "mul", (("high", op != "vmul"),)
    if op in _DIV:
        return "div", (("op", _DIV[op]),)
    if op in ("vsadd", "vssub", "vsaddu", "vssubu"):
        return op[1:], ()  # composite macro (VCU decomposition)
    raise IsaError(f"no macro-operation mapping for {op!r}")


class MacroOpRom:
    """Builds/caches micro-programs and cycle counts for one EVE-n design.

    With ``strict=True`` every program is statically verified on build
    (:func:`repro.uops.lint.check_program`): a malformed listing raises
    :class:`~repro.errors.LintError` at ROM-construction time instead of
    surfacing as a wrong cycle count or a hang mid-simulation.
    """

    #: Process-wide cycle table shared by every ROM of the same design.
    #: Timing-only replay is deterministic and control flow is
    #: data-independent, so ROMs for the same (factor, element_bits) —
    #: e.g. every freshly built EVE-4 machine in a sweep — share one
    #: cycle table instead of re-replaying per machine.  Programs stay
    #: per-instance: building one is cheap, and the generator table can
    #: legitimately differ between ROMs (tests patch it).
    _shared_cycles: Dict[tuple, Dict[tuple, int]] = {}

    def __init__(self, factor: int, element_bits: int = 32,
                 strict: bool = False) -> None:
        self.factor = factor
        self.element_bits = element_bits
        self.strict = strict
        self._programs: Dict[tuple, MicroProgram] = {}
        self._cycles = self._shared_cycles.setdefault(
            (factor, element_bits), {})
        self._engine = MicroEngine()

    def program(self, macro: str, **params: object) -> MicroProgram:
        if macro in COMPOSITE_MACROS:
            raise IsaError(
                f"{macro!r} is a VCU composite of base macro-operations; "
                "it has no single micro-program (see COMPOSITE_MACROS)")
        key = (macro, tuple(sorted(params.items())))
        if key not in self._programs:
            try:
                generator = GENERATORS[macro]
            except KeyError:
                raise IsaError(f"unknown macro-operation {macro!r}") from None
            program = generator(self.factor, self.element_bits, **params)
            if self.strict:
                from .lint import check_program
                check_program(program, self.factor, self.element_bits)
            self._programs[key] = program
        return self._programs[key]

    def verify(self) -> int:
        """Build and lint every spec this ROM serves (build-path check).

        Returns the number of programs verified; raises
        :class:`~repro.errors.LintError` on the first malformed one.
        """
        from .lint import check_program
        count = 0
        for macro, params in rom_specs():
            program = self.program(macro, **params)
            check_program(program, self.factor, self.element_bits)
            count += 1
        return count

    def cycles(self, macro: str, **params: object) -> int:
        if macro in COMPOSITE_MACROS:
            return sum(self.cycles(part, **part_params)
                       for part, part_params in COMPOSITE_MACROS[macro])
        key = (macro, tuple(sorted(params.items())))
        if key not in self._cycles:
            self._cycles[key] = self._engine.run(self.program(macro, **params))
        return self._cycles[key]

    def cycles_for(self, instr: VectorInstr) -> Optional[int]:
        """Cycle count of the ROM program for ``instr``; ``None`` if the
        instruction is a streamed (VMU/VRU) operation."""
        key = instr_key(instr)
        if key is None:
            return None
        macro, params = key
        return self.cycles(macro, **dict(params))

    def program_for(self, instr: VectorInstr) -> Optional[MicroProgram]:
        key = instr_key(instr)
        if key is None:
            return None
        macro, params = key
        return self.program(macro, **dict(params))


# Fail fast: an ISA/ROM mismatch is a packaging error, caught at import.
_check_rom_coverage()
