"""Control-flow graphs of micro-programs (the static-analysis substrate).

Control flow in EVE micro-programs is *data-independent* (Section IV-B):
branches test counter flags whose evolution is fixed by the program text,
never by the vector data being operated on.  A micro-program's CFG is
therefore **exact** — every static path is a possible dynamic path and the
dynamic trace follows one static path — which is what lets the dataflow
checks in :mod:`repro.uops.lint` be sound verifications rather than
heuristics.

Nodes are tuple indices ``0 .. len(program) - 1`` plus a virtual exit node
(:attr:`ControlFlowGraph.exit_node`, equal to ``len(program)``).  Edges are
labelled with how control reaches the successor:

``fall``
    Sequential flow, including the fall-through of ``bnz`` (counter
    wrapped) and ``bnd`` (no decade reached).
``taken``
    A ``jmp`` target, or the taken side of ``bnz`` / ``bnd``.
``ret``
    A ``ret`` μop ending the macro-operation.

An edge into the exit node whose kind is not ``ret`` means control runs off
the end of the ROM listing — legal in the Python executor, a bug in the
hardware μsequencer (it would fetch the next program's first tuple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from .program import MicroProgram


@dataclass(frozen=True)
class Edge:
    """One directed CFG edge ``src -> dst`` with its control kind."""

    src: int
    dst: int
    kind: str  # "fall" | "taken" | "ret"


class ControlFlowGraph:
    """CFG over the tuples of one :class:`MicroProgram`."""

    def __init__(self, program: MicroProgram) -> None:
        self.program = program
        n = len(program.tuples)
        self.exit_node = n
        self.edges: List[Edge] = []
        for i, tup in enumerate(program.tuples):
            ctrl = tup.control
            kind = ctrl.kind if ctrl is not None else "none"
            if kind == "ret":
                self.edges.append(Edge(i, n, "ret"))
            elif kind == "jmp":
                self.edges.append(Edge(i, program.target(ctrl.target), "taken"))
            elif kind in ("bnz", "bnd"):
                self.edges.append(Edge(i, program.target(ctrl.target), "taken"))
                self.edges.append(Edge(i, i + 1, "fall"))
            else:
                self.edges.append(Edge(i, i + 1, "fall"))
        self._succs: Dict[int, List[Edge]] = {i: [] for i in range(n + 1)}
        self._preds: Dict[int, List[Edge]] = {i: [] for i in range(n + 1)}
        for edge in self.edges:
            self._succs[edge.src].append(edge)
            self._preds[edge.dst].append(edge)

    def successors(self, node: int) -> List[Edge]:
        return self._succs[node]

    def predecessors(self, node: int) -> List[Edge]:
        return self._preds[node]

    # -- reachability ------------------------------------------------------

    @property
    def reachable(self) -> Set[int]:
        """Nodes reachable from the entry tuple (index 0), exit included."""
        seen = {0} if self.exit_node > 0 else {self.exit_node}
        stack = list(seen)
        while stack:
            node = stack.pop()
            for edge in self._succs[node]:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return seen

    # -- dominators --------------------------------------------------------

    def dominators(self) -> Dict[int, Set[int]]:
        """``dom[v]`` = nodes on *every* entry→v path (iterative dataflow).

        Only reachable nodes appear as keys; the entry dominates itself.
        """
        reach = self.reachable
        entry = 0 if self.exit_node > 0 else self.exit_node
        order = sorted(reach)
        dom: Dict[int, Set[int]] = {v: set(reach) for v in order}
        dom[entry] = {entry}
        changed = True
        while changed:
            changed = False
            for v in order:
                if v == entry:
                    continue
                preds = [e.src for e in self._preds[v] if e.src in reach]
                new = set.intersection(*(dom[p] for p in preds)) if preds else set()
                new.add(v)
                if new != dom[v]:
                    dom[v] = new
                    changed = True
        return dom

    # -- strongly connected components ------------------------------------

    def sccs(self) -> List[List[int]]:
        """Tarjan's SCCs over the reachable subgraph (iterative).

        Returns every component that can loop: size > 1, or a single node
        with a self-edge.  Straight-line nodes are omitted.
        """
        reach = self.reachable
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        result: List[List[int]] = []
        counter = [0]

        for root in sorted(reach):
            if root in index:
                continue
            work = [(root, iter([e.dst for e in self._succs[root] if e.dst in reach]))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, succs = work[-1]
                advanced = False
                for succ in succs:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter([e.dst for e in self._succs[succ]
                                         if e.dst in reach])))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or any(
                            e.dst == node for e in self._succs[node]):
                        result.append(sorted(component))
        return result
