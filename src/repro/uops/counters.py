"""The 12 shared EVE counters (Section IV-A).

Counters come in three groups of four — segment counters (``seg0..seg3``),
bit counters (``bit0..bit3``), and array counters (``arr0..arr3``).  Each
counter auto-resets to its initial value when decremented to zero and keeps
two sticky flags:

* the *zero flag*, set when the counter wraps (``bnz`` falls through on a
  set flag and consumes it);
* the *binary-decade flag*, set when a decrement lands on a power of two
  (``bnd`` branches on it and consumes it when taken).

For address generation the counter also exposes ``index``: the number of
decrements since ``init``, modulo the initial value — i.e. the current
iteration of the loop it drives.
"""

from __future__ import annotations

from ..errors import MicroExecutionError

COUNTER_NAMES = tuple(
    f"{group}{i}" for group in ("seg", "bit", "arr") for i in range(4)
)


class Counter:
    """One hardware counter with auto-reset and sticky flags."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.init_value = 1
        self.value = 1
        self.ticks = 0
        self.zero_flag = False
        self.decade_flag = False

    def init(self, value: int) -> None:
        if value <= 0:
            raise MicroExecutionError(f"{self.name}: init value must be positive")
        self.init_value = value
        self.value = value
        self.ticks = 0
        self.zero_flag = False
        self.decade_flag = False

    def decr(self) -> None:
        self.value -= 1
        self.ticks += 1
        if self.value == 0:
            self.zero_flag = True
            self.value = self.init_value  # hardware auto-reset
        if self.value & (self.value - 1) == 0:
            self.decade_flag = True

    def incr(self) -> None:
        """Count up from 0 towards the armed bound; the zero (wrap) flag
        sets when the bound is reached and the counter resets."""
        if self.value >= self.init_value:  # freshly armed: start from zero
            self.value = 0
        self.value += 1
        self.ticks += 1
        if self.value == self.init_value:
            self.zero_flag = True
            self.value = 0

    @property
    def index(self) -> int:
        """0-based iteration index of the loop this counter drives."""
        if self.ticks == 0:
            return 0
        return (self.ticks - 1) % self.init_value

    def consume_zero(self) -> bool:
        """Read-and-clear used by ``bnz`` fall-through."""
        flag = self.zero_flag
        self.zero_flag = False
        return flag

    def consume_decade(self) -> bool:
        """Read-and-clear used by ``bnd`` when taken."""
        flag = self.decade_flag
        self.decade_flag = False
        return flag


class CounterFile:
    """The 12 counters shared by all EVE SRAMs."""

    def __init__(self) -> None:
        self._counters = {name: Counter(name) for name in COUNTER_NAMES}

    def __getitem__(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            raise MicroExecutionError(f"unknown counter {name!r}") from None

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.init(1)
            counter.ticks = 0
