"""Section V-E — ephemeral spawn/teardown overhead.

The paper's claim: spawn cost scales linearly with the resident lines in
the carved-out ways (constant cycles per line, plus a write-back for dirty
lines); teardown is free.
"""

import numpy as np
import pytest

from repro.config import make_system
from repro.experiments import format_table
from repro.mem import CacheArray, spawn_cost, teardown_cost

from conftest import show


def warm(cache: CacheArray, n_lines: int, dirty_ratio: float, seed=11):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, cache.config.lines * 8, n_lines) * 64
    for addr in addrs:
        if not cache.lookup(int(addr), False):
            cache.fill(int(addr), dirty=rng.random() < dirty_ratio)


def sweep():
    rows = []
    for occupancy in (0.0, 0.25, 0.5, 0.75, 1.0):
        for dirty in (0.0, 0.5, 1.0):
            l2 = CacheArray(make_system("O3").l2)
            warm(l2, int(l2.config.lines * occupancy * 1.3), dirty)
            cost = spawn_cost(l2)
            rows.append([occupancy, dirty, cost.lines_walked,
                         cost.dirty_lines, cost.cycles])
    return rows


def test_spawn_cost_scaling(benchmark):
    rows = benchmark(sweep)
    show("Section V-E: spawn cost vs resident L2 state", format_table(
        ["occupancy", "dirty_ratio", "lines", "dirty", "cycles"], rows))
    # Linear in lines: cycles == lines + 4 * dirty (the model's constants).
    for _, _, lines, _dirty, _cycles in rows:
        assert cycles == lines + 4 * dirty
    # Monotone in occupancy for a fixed dirty ratio.
    clean = [r for r in rows if r[1] == 0.0]
    walked = [r[2] for r in clean]
    assert walked == sorted(walked)
    # Spawn cost is bounded by a full walk of the carved-out ways.
    l2_lines = make_system("O3").l2.lines
    for _, _, lines, dirty, cycles in rows:
        assert lines <= l2_lines // 2


def test_teardown_is_free(benchmark):
    cost = benchmark(teardown_cost)
    assert cost.is_free


def test_spawn_negligible_vs_workload(benchmark, runner):
    """Even a worst-case spawn (full dirty EVE ways) is small next to one
    kernel invocation — the engine is genuinely 'ephemeral'."""
    def worst_case():
        l2 = CacheArray(make_system("O3").l2)
        warm(l2, l2.config.lines * 3, 1.0)
        return spawn_cost(l2)
    cost = benchmark(worst_case)
    kernel_cycles = runner.run("O3+EVE-8", "vvadd").cycles
    assert cost.cycles < 0.6 * kernel_cycles
