#!/usr/bin/env python
"""Wall-clock smoke benchmark: how long does each workload take to simulate?

Runs every workload on a representative system pair (IO baseline and
O3+EVE-4) at tiny problem sizes by default, timing the host-side cost of
trace building and simulation via the runner's self-profiler, and appends
one ``bench``-kind record to the run store (``.eve-runs/`` by default) —
the same longitudinal history ``repro run --record`` writes, so
``repro history`` and ``repro diff`` read bench results too.

The record carries two ingredient families with different diff policies:
the deterministic per-(system, workload) cycle counts and EVE-4-vs-IO
speedups (gated exactly / direction-aware by ``repro diff``), and the
host wall-clock per workload (noisy, advisory).  ``--golden-out`` also
writes the record to a standalone JSON file suitable for committing as a
golden baseline (see ``benchmarks/golden/``).

This is a *simulator-performance* benchmark, not a paper-results one: CI
runs it to catch host-time and determinism regressions in the hot paths
(the paper's figures live in the ``test_*`` drivers next to this file).

An ``attribution-overhead`` leg additionally times O3+EVE-4 simulations
with the cycle-attribution collector on vs off (min-of-3 each, same
pre-built trace) and warns when the ratio exceeds a 10% budget — the
null-hook pattern is supposed to make observability cheap.  A
``telemetry-overhead`` leg does the same for the campaign event log
(sweep prefetch with events on vs off, 5% budget) and cross-checks that
the instrumented sweep's cycle counts match the uninstrumented one.

Unless ``--skip-sweep`` is given, it also wall-clocks the full systems x
workloads sweep serially, fanned out over ``--jobs`` worker processes,
and warm against the cell cache, cross-checking cycle-count equality —
and writes the whole record (including the sweep speedups) to
``BENCH_<tiny|full>.json`` so the numbers are tracked longitudinally.

Usage::

    python benchmarks/bench_smoke.py                   # tiny inputs
    python benchmarks/bench_smoke.py --full            # paper-scaled inputs
    python benchmarks/bench_smoke.py --store .eve-runs # where to append
    python benchmarks/bench_smoke.py --golden-out benchmarks/golden/baseline-tiny.json
    python benchmarks/bench_smoke.py --full --jobs 4  # full-scale sweep timing
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro.analysis import check_trace
from repro.experiments import ExperimentRunner, ParallelRunner, sweep_pairs
from repro.experiments.systems import build_machine
from repro.obs import AttributionCollector
from repro.obs.runstore import DEFAULT_ROOT, RunStore, make_record
from repro.workloads import REGISTRY

SYSTEMS = ("IO", "O3+EVE-4")

#: Hardware vector length for the dedicated analyzer-timing leg (the
#: EVE trace the simulated systems share).
ANALYSIS_VLMAX = 2048

#: Workloads timed by the attribution-overhead leg, and the host-time
#: ratio (attributed / uninstrumented simulation) it budgets for.
ATTRIBUTION_WORKLOADS = ("backprop", "k-means")
ATTRIBUTION_BUDGET = 1.10

#: Host-time ratio (telemetry-on / telemetry-off prefetch) the campaign
#: event log budgets for — event buffering happens outside the simulated
#: cells, so it should be nearly free.
TELEMETRY_BUDGET = 1.05

#: Systems timed by the compiler-speedup leg (interpreter / compiled
#: host seconds on the compiler-leg workload), and the advisory floor the
#: ratio should clear even at tiny problem sizes.  Full-scale backprop
#: clears 5x; tiny runs are milliseconds, so per-run constant costs
#: leave less headroom.
COMPILER_WORKLOAD = "backprop"
COMPILER_SYSTEMS = ("IO", "O3+EVE-4")
COMPILER_SPEEDUP_MIN = 3.0


def time_attribution(full: bool):
    """Wall-clock the cycle-attribution overhead on O3+EVE-4.

    Three *interleaved* (plain, attributed) measurement pairs on
    pre-built traces, per workload in :data:`ATTRIBUTION_WORKLOADS`,
    with the ratio taken from the paired minima.  Interleaving matters:
    timing all plain rounds first and all attributed rounds after lets
    host-frequency drift (turbo decay, a background process spinning up
    mid-benchmark) land entirely on one side, which once produced a
    nonsensical 0.69x "overhead" for k-means.  The ratio must stay
    within :data:`ATTRIBUTION_BUDGET`; like all wall-clock numbers here
    it is advisory (diffed, not gated), but the benchmark prints a
    WARNING so a hot-loop regression is visible in the CI log.
    """
    override = None if full else _tiny_override()
    out = {}
    for workload in ATTRIBUTION_WORKLOADS:
        runner = ExperimentRunner(params_override=override)
        trace = runner.trace_for("O3+EVE-4", workload)
        # Time the machines directly on the pre-built trace so neither
        # trace construction nor the runner's result cache skews either
        # side of the ratio.
        plain = attributed = float("inf")
        for _ in range(3):
            machine = build_machine("O3+EVE-4")
            start = time.perf_counter()
            machine.run(trace)
            plain = min(plain, time.perf_counter() - start)
            collector = AttributionCollector()
            machine = build_machine("O3+EVE-4", attribution=collector)
            start = time.perf_counter()
            machine.run(trace)
            collector.require_conserved(context=workload)
            attributed = min(attributed, time.perf_counter() - start)
        overhead = attributed / plain
        out[workload] = {
            "plain_seconds": plain,
            "attributed_seconds": attributed,
            "overhead": overhead,
            "within_budget": overhead <= ATTRIBUTION_BUDGET,
        }
    return out


def _tiny_override():
    return {name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}


def time_compiler(full: bool):
    """Wall-clock the trace compiler's simulation speedup.

    Interleaved (interpreted, compiled) measurement pairs per system in
    :data:`COMPILER_SYSTEMS` on one pre-built, pre-compiled
    :data:`COMPILER_WORKLOAD` trace, ratio from the paired minima —
    the same protocol as :func:`time_attribution`, for the same
    host-frequency-drift reason.  Compile time is reported separately
    (it is paid once per trace, amortised across every system at that
    vlmax).  Cycle counts and memory statistics are cross-checked: a
    compiled run that drifts from the interpreter is a bug, not a
    benchmark result.
    """
    from repro.compiler import compile_trace

    override = None if full else _tiny_override()
    rounds = 3 if full else 5
    out = {}
    for system in COMPILER_SYSTEMS:
        runner = ExperimentRunner(params_override=override)
        trace = runner.trace_for(system, COMPILER_WORKLOAD)
        start = time.perf_counter()
        compiled = compile_trace(trace)
        compile_seconds = time.perf_counter() - start
        build_machine(system).run(trace)  # warm shared ROM caches
        interpreted = batched = float("inf")
        interp_result = compiled_result = None
        for _ in range(rounds):
            machine = build_machine(system)
            start = time.perf_counter()
            interp_result = machine.run(trace)
            interpreted = min(interpreted, time.perf_counter() - start)
            machine = build_machine(system)
            start = time.perf_counter()
            compiled_result = machine.run(trace, compiled=compiled)
            batched = min(batched, time.perf_counter() - start)
        speedup = interpreted / batched
        out[system] = {
            "workload": COMPILER_WORKLOAD,
            "compile_seconds": compile_seconds,
            "interpreted_seconds": interpreted,
            "compiled_seconds": batched,
            "speedup": speedup,
            "meets_advisory": speedup >= COMPILER_SPEEDUP_MIN,
            "cycles_identical": (
                interp_result.cycles == compiled_result.cycles
                and interp_result.mem_stats == compiled_result.mem_stats
                and interp_result.instructions == compiled_result.instructions),
        }
    return out


def time_telemetry(full: bool):
    """Wall-clock the campaign-telemetry overhead on a serial sweep.

    Telemetry-off prefetches vs runs with a full
    :class:`CampaignTelemetry` hub (event log on a temp file) over the
    same cell grid, fresh runners each round so neither side reuses warm
    results (min-of-5: the tiny cells finish in milliseconds, so the
    ratio needs a few rounds to shake off host-clock jitter).  The
    ratio must stay within :data:`TELEMETRY_BUDGET`; the cycle counts
    are cross-checked so an instrumented sweep can never drift from an
    uninstrumented one unnoticed.
    """
    from repro.obs.events import NULL_TELEMETRY, CampaignTelemetry, EventLog

    override = None if full else _tiny_override()
    pairs = [(s, w) for w in ("vvadd", "pathfinder") for s in SYSTEMS]

    def prefetch_once(telemetry_path):
        telemetry = NULL_TELEMETRY
        if telemetry_path is not None:
            telemetry = CampaignTelemetry(
                "bench", log=EventLog(telemetry_path))
        runner = ExperimentRunner(params_override=override,
                                  telemetry=telemetry)
        start = time.perf_counter()
        runner.prefetch(pairs)
        elapsed = time.perf_counter() - start
        if telemetry_path is not None:
            telemetry.finalize()
        return elapsed, {(s, w): runner.run(s, w).cycles for s, w in pairs}

    log_dir = tempfile.mkdtemp(prefix="eve-bench-events-")
    try:
        plain = observed = float("inf")
        plain_cycles = observed_cycles = None
        for i in range(5):
            seconds, plain_cycles = prefetch_once(None)
            plain = min(plain, seconds)
        for i in range(5):
            seconds, observed_cycles = prefetch_once(
                os.path.join(log_dir, f"events-{i}.jsonl"))
            observed = min(observed, seconds)
    finally:
        shutil.rmtree(log_dir, ignore_errors=True)
    overhead = observed / plain
    return {
        "cells": len(pairs),
        "plain_seconds": plain,
        "telemetry_seconds": observed,
        "overhead": overhead,
        "within_budget": overhead <= TELEMETRY_BUDGET,
        "cycles_identical": plain_cycles == observed_cycles,
    }


def time_sweep(full: bool, jobs: int):
    """Wall-clock the full systems x workloads sweep three ways.

    Serial (the pre-parallel baseline), fanned out over ``jobs`` worker
    processes with a cold cell cache, and a warm re-run against the
    cache the parallel leg just populated — so CI tracks both the
    parallelism speedup and the repeat-invocation cache speedup
    longitudinally.  Also cross-checks that the serial and parallel
    legs produced identical cycle counts.
    """
    override = None if full else _tiny_override()
    pairs = sweep_pairs()
    serial = ExperimentRunner(params_override=override)
    start = time.perf_counter()
    serial.prefetch(pairs)
    serial_seconds = time.perf_counter() - start

    cache_dir = tempfile.mkdtemp(prefix="eve-bench-cache-")
    try:
        cold = ParallelRunner(params_override=override, jobs=jobs,
                              cache_root=cache_dir)
        start = time.perf_counter()
        cold.prefetch(pairs)
        parallel_seconds = time.perf_counter() - start
        identical = all(
            serial.run(s, w).cycles == cold.run(s, w).cycles
            for s, w in pairs)

        warm = ParallelRunner(params_override=override, jobs=jobs,
                              cache_root=cache_dir)
        start = time.perf_counter()
        warm.prefetch(pairs)
        warm_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "cells": len(pairs),
        "jobs": cold.jobs,
        "cpus": os.cpu_count() or 1,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "warm_cache_seconds": warm_seconds,
        "warm_cache_speedup": serial_seconds / warm_seconds,
        "serial_parallel_identical": identical,
    }


def run_benchmark(full: bool):
    """Returns a ``bench``-kind RunRecord for every workload on SYSTEMS."""
    override = None if full else _tiny_override()
    record = make_record(
        "bench", label="full" if full else "tiny", tiny=not full,
        command=" ".join(sys.argv),
        fingerprint_extra=None if full else {"params": "tiny"})
    record.speedup_baseline = "IO"
    per_workload = {}
    for workload in sorted(REGISTRY):
        runner = ExperimentRunner(params_override=override)
        start = time.perf_counter()
        results = {system: runner.run(system, workload) for system in SYSTEMS}
        elapsed = time.perf_counter() - start
        profile = runner.profiler.merged()
        # Dedicated analyzer-overhead leg: the static checker suite must
        # stay a small fraction of the vector-trace build it guards.
        # verify=True matches the runner default (strict mode gates that
        # build); the sub-millisecond check takes a min-of-3 so the host
        # clock's jitter doesn't swamp the ratio.
        params = override.get(workload) if override else None
        start = time.perf_counter()
        trace = REGISTRY[workload].vector_trace(ANALYSIS_VLMAX, params)
        vector_build = time.perf_counter() - start
        check_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            findings = check_trace(trace, name=workload)
            check_seconds = min(check_seconds, time.perf_counter() - start)
        per_workload[workload] = {
            "seconds": elapsed,
            "trace_build_seconds": profile.get("trace_build", 0.0),
            "sim_seconds": profile.get("sim", 0.0),
            "vector_trace_build_seconds": vector_build,
            "analysis_check_seconds": check_seconds,
            "analysis_vs_trace_build": check_seconds / vector_build,
            "analysis_findings": len(findings),
        }
        for system, result in results.items():
            record.add_result(system, workload, cycles=result.cycles,
                              time_ns=result.time_ns,
                              instructions=result.instructions)
        record.speedups[workload] = {
            "O3+EVE-4": results["IO"].cycles / results["O3+EVE-4"].cycles}
    record.extra["bench_workloads"] = per_workload
    record.extra["bench_total_seconds"] = sum(
        r["seconds"] for r in per_workload.values())
    record.extra["bench_systems"] = list(SYSTEMS)
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="paper-scaled inputs (slow) instead of tiny")
    parser.add_argument("--store", default=DEFAULT_ROOT, metavar="DIR",
                        help=f"run-store directory to append to "
                             f"(default: {DEFAULT_ROOT})")
    parser.add_argument("--no-store", action="store_true",
                        help="skip the run-store append (print only)")
    parser.add_argument("--golden-out", default=None, metavar="FILE",
                        help="also write the record to FILE as a "
                             "standalone golden-baseline JSON")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes for the sweep timing "
                             "(0 = all CPUs; default: 0)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the serial-vs-parallel sweep timing")
    parser.add_argument("--bench-out", default=None, metavar="FILE",
                        help="BENCH json file to write (default: "
                             "BENCH_<tiny|full>.json; 'none' to skip)")
    args = parser.parse_args(argv)

    record = run_benchmark(args.full)
    attribution = time_attribution(args.full)
    record.extra["attribution_overhead"] = attribution
    compiler = time_compiler(args.full)
    record.extra["compiler_speedup"] = compiler
    telemetry = time_telemetry(args.full)
    record.extra["telemetry_overhead"] = telemetry
    if not args.skip_sweep:
        sweep = time_sweep(args.full, args.jobs or None)
        record.extra["sweep"] = sweep
    bench = record.extra["bench_workloads"]
    width = max(len(name) for name in bench)
    for name, row in sorted(bench.items()):
        print(f"{name:<{width}}  {row['seconds'] * 1e3:9.1f} ms   "
              f"check {row['analysis_check_seconds'] * 1e3:6.2f} ms "
              f"({100 * row['analysis_vs_trace_build']:.1f}% of build, "
              f"{row['analysis_findings']} finding(s))")
    total = record.extra["bench_total_seconds"]
    print(f"{'total':<{width}}  {total * 1e3:9.1f} ms")
    for name, row in sorted(attribution.items()):
        print(f"attribution {name}: plain "
              f"{row['plain_seconds'] * 1e3:.1f} ms, attributed "
              f"{row['attributed_seconds'] * 1e3:.1f} ms "
              f"({row['overhead']:.2f}x, budget {ATTRIBUTION_BUDGET:.2f}x)")
        if not row["within_budget"]:
            print(f"WARNING: attribution overhead for {name} exceeds "
                  f"the {ATTRIBUTION_BUDGET:.2f}x budget", file=sys.stderr)
    for system, row in sorted(compiler.items()):
        print(f"compiler {system}/{row['workload']}: interpreted "
              f"{row['interpreted_seconds'] * 1e3:.1f} ms, compiled "
              f"{row['compiled_seconds'] * 1e3:.1f} ms "
              f"({row['speedup']:.2f}x, advisory floor "
              f"{COMPILER_SPEEDUP_MIN:.1f}x; compile "
              f"{row['compile_seconds'] * 1e3:.1f} ms), "
              f"identical={row['cycles_identical']}")
        if not row["meets_advisory"]:
            print(f"WARNING: compiler speedup for {system} fell below "
                  f"the {COMPILER_SPEEDUP_MIN:.1f}x advisory floor",
                  file=sys.stderr)
        if not row["cycles_identical"]:
            print(f"WARNING: compiled-path results for {system} diverged "
                  "from the interpreter", file=sys.stderr)
    print(f"telemetry ({telemetry['cells']} cells): off "
          f"{telemetry['plain_seconds'] * 1e3:.1f} ms, on "
          f"{telemetry['telemetry_seconds'] * 1e3:.1f} ms "
          f"({telemetry['overhead']:.2f}x, budget {TELEMETRY_BUDGET:.2f}x), "
          f"identical={telemetry['cycles_identical']}")
    if not telemetry["within_budget"]:
        print(f"WARNING: campaign-telemetry overhead exceeds the "
              f"{TELEMETRY_BUDGET:.2f}x budget", file=sys.stderr)
    if not telemetry["cycles_identical"]:
        print("WARNING: telemetry-on sweep cycles diverged from the "
              "telemetry-off sweep", file=sys.stderr)
    sweep = record.extra.get("sweep")
    if sweep:
        print(f"sweep ({sweep['cells']} cells, {sweep['jobs']} worker(s), "
              f"{sweep['cpus']} cpu(s)): "
              f"serial {sweep['serial_seconds']:.2f}s, "
              f"parallel {sweep['parallel_seconds']:.2f}s "
              f"({sweep['speedup']:.2f}x), "
              f"warm cache {sweep['warm_cache_seconds']:.2f}s "
              f"({sweep['warm_cache_speedup']:.2f}x), "
              f"identical={sweep['serial_parallel_identical']}")

    bench_out = args.bench_out or f"BENCH_{record.label}.json"
    if bench_out != "none":
        with open(bench_out, "w") as handle:
            json.dump(record.to_json_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {bench_out}")
    if args.golden_out:
        with open(args.golden_out, "w") as handle:
            json.dump(record.to_json_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote golden baseline {args.golden_out}")
    if not args.no_store:
        store = RunStore(args.store)
        record_id = store.append(record)
        print(f"recorded {record_id} -> {store.runs_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
