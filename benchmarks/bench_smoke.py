#!/usr/bin/env python
"""Wall-clock smoke benchmark: how long does each workload take to simulate?

Runs every workload on a representative system pair (IO baseline and
O3+EVE-4) at tiny problem sizes by default, timing the host-side cost of
trace building and simulation via the runner's self-profiler, and writes
one ``BENCH_<label>.json`` file with per-workload wall-clock seconds.

This is a *simulator-performance* benchmark, not a paper-results one: CI
runs it to catch host-time regressions in the hot paths (the paper's
figures live in the ``test_*`` drivers next to this file).

Usage::

    python benchmarks/bench_smoke.py                # tiny inputs
    python benchmarks/bench_smoke.py --full         # paper-scaled inputs
    python benchmarks/bench_smoke.py -o out/        # where to write
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import __version__
from repro.experiments import ExperimentRunner
from repro.workloads import REGISTRY

SYSTEMS = ("IO", "O3+EVE-4")


def run_benchmark(full: bool) -> dict:
    override = None if full else {
        name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}
    per_workload = {}
    for workload in sorted(REGISTRY):
        runner = ExperimentRunner(params_override=override)
        start = time.perf_counter()
        for system in SYSTEMS:
            runner.run(system, workload)
        elapsed = time.perf_counter() - start
        profile = runner.profiler.merged()
        per_workload[workload] = {
            "seconds": elapsed,
            "trace_build_seconds": profile.get("trace_build", 0.0),
            "sim_seconds": profile.get("sim", 0.0),
        }
    return per_workload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="paper-scaled inputs (slow) instead of tiny")
    parser.add_argument("-o", "--output-dir", default=".",
                        help="directory for the BENCH_*.json file")
    args = parser.parse_args(argv)

    label = "full" if args.full else "tiny"
    results = run_benchmark(args.full)
    payload = {
        "label": label,
        "systems": list(SYSTEMS),
        "repro_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": results,
        "total_seconds": sum(r["seconds"] for r in results.values()),
    }
    out = Path(args.output_dir) / f"BENCH_{label}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(name) for name in results)
    for name, row in sorted(results.items()):
        print(f"{name:<{width}}  {row['seconds'] * 1e3:9.1f} ms")
    print(f"{'total':<{width}}  {payload['total_seconds'] * 1e3:9.1f} ms")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
