"""Table IV (right half) — speedups versus the integrated vector unit,
with the paper's E-8/E-1 and E-8/E-32 ratio columns.

Shape targets (paper values in parentheses):

* mmult: bit-serial EVE-1 *loses* to IV (0.93x) while EVE-8 wins;
* the E-8/E-1 geomean ratio lands near the paper's ~2x;
* the EVE geomean peaks at EVE-8 (which anchors the paper's 4.59x claim).
"""

from repro.experiments import format_table
from repro.experiments.figures import table4_speedups

from conftest import show

COLS = ["workload", "DV", "E-1", "E-2", "E-4", "E-8", "E-16", "E-32",
        "E8/E1", "E8/E32"]


def test_table4_speedups(benchmark, runner):
    rows = benchmark(table4_speedups, runner)
    show("Table IV: speedups vs O3+IV", format_table(
        COLS, [[r[c] for c in COLS] for r in rows]))
    by_name = {r["workload"]: r for r in rows}

    # mmult: bit-serial loses to IV, bit-hybrid wins (paper: 0.93 / 5.34).
    assert by_name["mmult"]["E-1"] < 1.0
    assert by_name["mmult"]["E-8"] > 1.5

    # Memory-bound vvadd: all EVE designs cluster near DV (paper ~3.2-3.6).
    assert by_name["vvadd"]["E-8"] > 2.0

    geo = rows[-1]
    eve_cols = {c: geo[c] for c in ("E-1", "E-2", "E-4", "E-8", "E-16", "E-32")}
    assert max(eve_cols, key=eve_cols.get) == "E-8"
    assert geo["E8/E1"] > 1.5     # paper per-app range: 1.03 - 2.55
    assert geo["E8/E32"] > 1.0    # paper per-app range: 0.97 - 1.24
    assert geo["E-8"] > 1.0       # EVE-8 beats the integrated unit
