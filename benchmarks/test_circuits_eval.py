"""Section VI — circuits evaluation: area, cycle time, and energy.

Regenerates the numbers of Section VI-B: per-sub-array circuit overheads,
EVE SRAM overheads after banking, total L2 overhead (11.7% for EVE-8),
cycle times (1.025 / 1.175 / 1.55 ns), and the relative-energy analysis
(blc +20% over a read; sustained power below that peak).
"""

import pytest

from repro.circuits_model import AreaModel, cycle_time_ns
from repro.circuits_model.energy import OP_ENERGY_REL, average_power_overhead
from repro.experiments import format_table
from repro.uops import MacroOpRom

from conftest import show

FACTORS = (1, 2, 4, 8, 16, 32)


def area_rows():
    rows = []
    for n in FACTORS:
        model = AreaModel(n)
        rows.append([f"EVE-{n}", model.stack_overhead,
                     model.eve_sram_overhead, model.l2_overhead,
                     cycle_time_ns(n)])
    return rows


def test_section6_area_and_cycle_time(benchmark):
    rows = benchmark(area_rows)
    show("Section VI: area overheads & cycle time", format_table(
        ["design", "stack_ovh", "eve_sram_ovh", "L2_ovh", "cycle_ns"], rows))
    by_name = {r[0]: r for r in rows}
    assert by_name["EVE-1"][1] == pytest.approx(0.090)   # 9.0%
    assert by_name["EVE-8"][1] == pytest.approx(0.156)   # 15.6% (hybrid)
    assert by_name["EVE-32"][1] == pytest.approx(0.126)  # 12.6%
    assert by_name["EVE-8"][3] == pytest.approx(0.117, abs=0.001)  # 11.7%
    assert by_name["EVE-16"][4] == pytest.approx(1.175)
    assert by_name["EVE-32"][4] == pytest.approx(1.55)


def energy_rows():
    rows = []
    for n in (1, 8, 32):
        rom = MacroOpRom(n)
        rows.append([f"EVE-{n}",
                     average_power_overhead(rom, "add"),
                     average_power_overhead(rom, "mul"),
                     average_power_overhead(rom, "logic", op="xor")])
    return rows


def test_section6_energy(benchmark):
    rows = benchmark(energy_rows)
    show("Section VI: mean per-cycle energy (read = 1.0; blc peak = 1.2)",
         format_table(["design", "add", "mul", "xor"], rows))
    for row in rows:
        for value in row[1:]:
            assert 0 < value <= OP_ENERGY_REL["blc"]
