"""Ablations of EVE design choices (DESIGN.md's per-experiment index).

Three studies the paper motivates but does not plot:

* LLC MSHR sweep — Section VII-B names the limited MSHRs as the key
  bottleneck for strided kernels and future work; sweeping the pool size
  on backprop quantifies it.
* DTU count sweep — Section VII-B argues eight conservative DTUs suffice
  because compute hides transpose; halving/doubling them tests that.
* EVE pool size sweep — how performance scales with the number of EVE
  SRAMs (i.e. how many L2 ways are carved out).
"""

from dataclasses import replace

import pytest

from repro.config import make_system
from repro.core import EveMachine
from repro.experiments import ExperimentRunner, format_table
from repro.workloads import get_workload

from conftest import show


#: Traces shared across ablation points (keyed by workload and VL).
_TRACE_CACHE = {}


def run_eve(config, workload_name):
    machine = EveMachine(config)
    key = (workload_name, machine.config.vector.hardware_vl)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = get_workload(workload_name).vector_trace(key[1])
    return machine.run(_TRACE_CACHE[key])


def test_llc_mshr_sweep(benchmark):
    """backprop throughput vs LLC MSHRs (the future-work lever)."""
    def sweep():
        rows = []
        base = make_system("O3+EVE-8")
        for mshrs in (8, 16, 32, 64, 128):
            config = replace(base, llc=replace(base.llc, mshrs=mshrs))
            result = run_eve(config, "backprop")
            rows.append([mshrs, result.cycles, result.vmu_llc_stall_frac])
        return rows

    rows = benchmark(sweep)
    show("Ablation: LLC MSHRs vs backprop (EVE-8)", format_table(
        ["llc_mshrs", "cycles", "vmu_stall_frac"], rows))
    cycles = [r[1] for r in rows]
    # More MSHRs monotonically help the strided kernel...
    assert cycles == sorted(cycles, reverse=True)
    # ...and meaningfully so from 8 to 128.
    assert cycles[0] / cycles[-1] > 1.2
    # Stall fraction falls as the pool grows.
    assert rows[-1][2] < rows[0][2]


def test_dtu_count_sweep(benchmark):
    """Transpose bandwidth: the paper's 8 DTUs against fewer/more."""
    def sweep():
        rows = []
        base = make_system("O3+EVE-8")
        for dtus in (1, 2, 4, 8, 16):
            config = replace(base, eve_sram=replace(base.eve_sram,
                                                    num_dtus=dtus))
            result = run_eve(config, "pathfinder")
            breakdown = result.breakdown
            rows.append([dtus, result.cycles,
                         breakdown.ld_dt_stall + breakdown.st_dt_stall])
        return rows

    rows = benchmark(sweep)
    show("Ablation: DTU count vs pathfinder (EVE-8)", format_table(
        ["dtus", "cycles", "dt_stall_cycles"], rows))
    cycles = {r[0]: r[1] for r in rows}
    # Starving the transpose path hurts...
    assert cycles[1] >= cycles[8]
    # ...but the paper's 8 DTUs already saturate: 16 buys almost nothing.
    assert cycles[8] / cycles[16] < 1.05


def test_pool_size_sweep(benchmark):
    """Carving fewer/more L2 ways: EVE SRAM count vs performance."""
    def sweep():
        rows = []
        base = make_system("O3+EVE-8")
        for arrays in (8, 16, 32):
            config = replace(base, eve_sram=replace(base.eve_sram,
                                                    num_arrays=arrays))
            config = replace(config, vector=replace(
                config.vector, hardware_vl=32 * arrays))
            result = run_eve(config, "jacobi-2d")
            rows.append([arrays, config.vector.hardware_vl, result.cycles])
        return rows

    rows = benchmark(sweep)
    show("Ablation: EVE SRAM pool size vs jacobi-2d (EVE-8)", format_table(
        ["arrays", "hw_VL", "cycles"], rows))
    cycles = [r[2] for r in rows]
    # Longer hardware vectors amortise control and memory issue.
    assert cycles[-1] <= cycles[0]
