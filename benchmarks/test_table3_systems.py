"""Table III — the simulated systems, including derived EVE vector lengths."""

from repro.experiments import format_table
from repro.experiments.figures import table3

from conftest import show

PAPER_VLS = {"O3+EVE-1": 2048, "O3+EVE-2": 2048, "O3+EVE-4": 2048,
             "O3+EVE-8": 1024, "O3+EVE-16": 512, "O3+EVE-32": 256}


def test_table3(benchmark):
    rows = benchmark(table3)
    show("Table III: simulated systems", format_table(
        ["system", "L2_KB", "L2_ways", "hw_VL", "trace_VLMAX", "cycle_ns"],
        [[r["system"], r["l2_kb"], r["l2_ways"], r["hardware_vl"],
          r["vlmax"], r["cycle_time_ns"]] for r in rows]))
    by_name = {r["system"]: r for r in rows}
    for name, vl in PAPER_VLS.items():
        assert by_name[name]["hardware_vl"] == vl
    assert by_name["O3"]["l2_kb"] == 512
    assert by_name["O3+EVE-8"]["l2_kb"] == 256  # way-partitioned
