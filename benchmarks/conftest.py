"""Shared state for the benchmark drivers.

One full-size :class:`ExperimentRunner` is shared by every driver in this
directory, so simulations run once and each table/figure renders from the
cached results.  The first benchmark touching a (system, workload) pair
pays its simulation cost; that cost is what pytest-benchmark reports.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner


def pytest_configure(config):
    # Single-shot measurements: the sims are deterministic and expensive.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Full-size (paper-scaled) experiment runner, shared session-wide."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def thrash_runner() -> ExperimentRunner:
    """Figure 8's variant: k-means scaled up (8192 points) so the point
    set thrashes the LLC and the VMU hits the MSHR limit, as in the paper."""
    return ExperimentRunner(params_override={"k-means": {"n": 8192}})


def show(title: str, text: str) -> None:
    print(f"\n=== {title} ===\n{text}")
