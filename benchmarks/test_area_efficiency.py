"""Section VII-B — area-efficiency analysis.

Paper claims checked in shape: system area factors match the paper's
rounded values exactly; EVE-8 achieves higher area-normalised performance
than the decoupled engine, at an area factor comparable to the integrated
unit.
"""

import pytest

from repro.experiments import format_table
from repro.experiments.figures import area_efficiency, area_table

from conftest import show

PAPER_FACTORS = {"O3+IV": 1.10, "O3+DV": 2.00, "O3+EVE-1": 1.10,
                 "O3+EVE-2": 1.12, "O3+EVE-4": 1.12, "O3+EVE-8": 1.12,
                 "O3+EVE-16": 1.12, "O3+EVE-32": 1.11}


def test_area_factors(benchmark):
    rows = benchmark(area_table)
    show("Section VII-B: system area factors", format_table(
        ["system", "area_factor"],
        [[r["system"], r["area_factor"]] for r in rows]))
    by_name = {r["system"]: r for r in rows}
    for name, factor in PAPER_FACTORS.items():
        assert round(by_name[name]["area_factor"], 2) == pytest.approx(factor)


def test_area_normalised_performance(benchmark, runner):
    rows = benchmark(area_efficiency, runner)
    show("Section VII-B: performance per area (vs O3, geomean of the "
         "paper's five apps)", format_table(
             ["system", "speedup_vs_O3", "area", "perf/area"],
             [[r["system"], r["speedup_vs_o3"], r["area_factor"],
               r["perf_per_area"]] for r in rows]))
    by_name = {r["system"]: r for r in rows}
    # The headline: EVE-8 beats the decoupled engine per unit area.
    assert by_name["O3+EVE-8"]["perf_per_area"] > \
        by_name["O3+DV"]["perf_per_area"]
    # ...at an area budget comparable to the integrated unit.
    assert by_name["O3+EVE-8"]["area_factor"] <= 1.15
    # And EVE-8 is the most area-efficient EVE design.
    eve = {n: by_name[n]["perf_per_area"] for n in by_name if "EVE" in n}
    assert max(eve, key=eve.get) in ("O3+EVE-8", "O3+EVE-4")
