"""Table IV (left half) — static characterisation of the workloads at the
binary's VL=64: instruction mixes, vector fractions, parallelism, work
inflation, and arithmetic intensity.
"""

from repro.experiments import format_table
from repro.experiments.figures import table4_characterization

from conftest import show

COLS = ["workload", "suite", "scalar_dins", "vector_dins", "vi_pct", "ctrl",
        "ialu", "imul", "xe", "us", "st", "idx", "prd", "vo_pct", "vpar",
        "winf", "arint"]


def test_table4_characterization(benchmark):
    rows = benchmark(table4_characterization)
    show("Table IV: workload characterisation (VL=64)", format_table(
        COLS, [[r[c] for c in COLS] for r in rows]))
    by_name = {r["workload"]: r for r in rows}

    # Paper-anchored qualitative checks.
    assert by_name["vvadd"]["arint"] < 0.5          # paper: 0.33
    assert by_name["vvadd"]["us"] > 50              # streaming kernel
    assert by_name["mmult"]["imul"] > 10            # multiply-heavy
    assert by_name["backprop"]["st"] > 10           # strided weights
    assert by_name["k-means"]["idx"] > 0            # centre gathers
    assert by_name["pathfinder"]["prd"] > 10        # predicated min
    assert by_name["sw"]["idx"] > 0                 # substitution gathers
    for r in rows:
        assert r["vo_pct"] > 90                     # paper: 96-98%
        assert r["vpar"] > 10                       # paper: 21-30
