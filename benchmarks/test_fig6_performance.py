"""Figure 6 — performance of every system, normalised to the in-order core.

Shape targets from the paper (absolute factors are compressed by our
scaled-down inputs; see EXPERIMENTS.md):

* every vector system beats IO on every kernel;
* the EVE geomean (over the paper's five apps) peaks at EVE-8;
* memory-bound vvadd is flat across the EVE designs;
* O3+DV is the strongest baseline.
"""

from repro.config import all_system_names
from repro.experiments import format_table
from repro.experiments.figures import ALL_APPS, figure6

from conftest import show


def test_figure6(benchmark, runner):
    rows = benchmark(figure6, runner)
    systems = all_system_names()
    show("Figure 6: speedup over IO", format_table(
        ["workload"] + systems,
        [[r["workload"]] + [r[s] for s in systems] for r in rows]))

    geo = rows[-1]
    assert geo["workload"] == "geomean*"
    # EVE-8 is the best EVE design on the paper's geomean.
    eve_geos = {s: geo[s] for s in systems if "EVE" in s}
    assert max(eve_geos, key=eve_geos.get) == "O3+EVE-8"
    # Bit-serial is the weakest EVE design.
    assert min(eve_geos, key=eve_geos.get) == "O3+EVE-1"
    # Every vector engine beats the in-order baseline on the geomean.
    for system in ("O3+IV", "O3+DV", "O3+EVE-8"):
        assert geo[system] > 1.0

    # vvadd (memory-bound) is flat across EVE-1..8: within ~25%.
    vvadd = rows[0]
    assert vvadd["workload"] == "vvadd"
    flat = [vvadd[f"O3+EVE-{n}"] for n in (1, 2, 4, 8)]
    assert max(flat) / min(flat) < 1.35
