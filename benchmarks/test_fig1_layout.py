"""Figure 1 — data organisation in the S-CIM SRAM array.

Regenerates the figure's quantitative content: elements (in-situ ALUs) and
utilization for the 16x16/8-bit illustrative array as registers and the
parallelization factor vary, plus the full-size 256x256/32-bit layout used
everywhere else.
"""

from repro.experiments import format_table
from repro.sram import RegisterLayout

from conftest import show


def fig1_rows():
    rows = []
    for factor in (1, 2, 4, 8):
        for regs in (1, 2, 4):
            lay = RegisterLayout(rows=16, cols=16, element_bits=8,
                                 factor=factor, num_vregs=regs)
            rows.append([
                factor, regs, lay.segments, lay.elements_per_array,
                lay.groups_per_element, lay.row_utilization,
                lay.storage_utilization,
            ])
    return rows


def test_figure1_layout(benchmark):
    rows = benchmark(fig1_rows)
    show("Figure 1: 16x16 SRAM, 8-bit elements", format_table(
        ["factor", "vregs", "segments", "ALUs", "groups/elem",
         "row_util", "storage_util"], rows))
    by_key = {(r[0], r[1]): r for r in rows}
    # One register at factor 1 leaves half the rows empty (Figure 1 left).
    assert by_key[(1, 1)][5] == 0.5
    # Two registers reach balanced utilization.
    assert by_key[(1, 2)][5] == 1.0
    # Four registers at factor 1 repurpose columns: ALUs halve.
    assert by_key[(1, 4)][3] == 8


def test_figure1_full_size_layout(benchmark):
    def rows():
        out = []
        for factor in (1, 2, 4, 8, 16, 32):
            lay = RegisterLayout(rows=256, cols=256, element_bits=32,
                                 factor=factor, num_vregs=32)
            out.append([factor, lay.elements_per_array, lay.row_utilization,
                        lay.groups_per_element])
        return out
    table = benchmark(rows)
    show("Figure 1 (full size): 256x256 SRAM, 32-bit, 32 vregs",
         format_table(["factor", "ALUs", "row_util", "groups/elem"], table))
    assert [r[1] for r in table] == [64, 64, 64, 32, 16, 8]
