"""Figure 8 — cache-induced stalls in the VMU (LLC MSHR pressure).

Paper shapes checked:

* backprop (64-byte-stride weights: one line per element) stalls the VMU
  for a large share of its execution at the long-vector factors, and the
  stall fraction falls as the hardware vector length halves (EVE-8/16/32
  need fewer outstanding lines per instruction) — the paper's
  halved-MSHR-demand effect;
* pathfinder shows the same direction at lower magnitude.

Deviation (see EXPERIMENTS.md): our k-means feature walk re-touches the
lines of the cluster-0 pass, so at the scaled input the LLC absorbs it
and the VMU barely stalls — the paper's ~45% k-means stalls do not
reproduce at this scale.  The row is still reported (at an LLC-thrashing
input) for completeness.
"""

from repro.experiments import format_table
from repro.experiments.figures import EVE_SYSTEMS, figure8

from conftest import show


def test_figure8(benchmark, runner, thrash_runner):
    def compute():
        backprop_paths = figure8(runner, apps=("backprop", "pathfinder"))
        kmeans = figure8(thrash_runner, apps=("k-means",))
        return backprop_paths + kmeans

    rows = benchmark(compute)
    show("Figure 8: VMU stall fraction issuing to the LLC", format_table(
        ["workload"] + list(EVE_SYSTEMS),
        [[r["workload"]] + [r[s] for s in EVE_SYSTEMS] for r in rows]))
    by_name = {r["workload"]: r for r in rows}

    backprop = by_name["backprop"]
    # Strided weights starve the MSHRs at every factor...
    for system in EVE_SYSTEMS:
        assert backprop[system] > 0.3
    # ...and halving the vector length relieves the pressure (monotone
    # from the balanced factor onwards; EVE-1's longer transpose-inflated
    # runtime dilutes its *fraction*, a documented deviation).
    assert backprop["O3+EVE-4"] > backprop["O3+EVE-8"] \
        > backprop["O3+EVE-16"] > backprop["O3+EVE-32"]

    # pathfinder: same direction, smaller magnitude than backprop.
    pathfinder = by_name["pathfinder"]
    assert pathfinder["O3+EVE-1"] < backprop["O3+EVE-1"]

    # k-means: the scaled input's reuse hides MSHR pressure (documented
    # deviation) — fractions stay small and bounded.
    for system in EVE_SYSTEMS:
        assert 0.0 <= by_name["k-means"][system] < 0.2
