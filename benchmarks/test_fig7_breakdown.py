"""Figure 7 — execution breakdown of the EVE designs, normalised to EVE-1.

Paper shapes checked:

* memory-bound kernels (backprop) are dominated by memory stalls at every
  factor;
* compute time (busy) shrinks from EVE-1 towards the balanced factor;
* EVE-32 shows no transpose stalls (bit-parallel data needs none).
"""

from repro.cores.result import BREAKDOWN_BUCKETS
from repro.experiments import format_table
from repro.experiments.figures import GEOMEAN_APPS, figure7

from conftest import show

COLS = ["workload", "system", "total"] + list(BREAKDOWN_BUCKETS)


def test_figure7(benchmark, runner):
    rows = benchmark(figure7, runner, GEOMEAN_APPS)
    show("Figure 7: execution breakdown (normalised to EVE-1)", format_table(
        COLS, [[r[c] for c in COLS] for r in rows]))
    by_key = {(r["workload"], r["system"]): r for r in rows}

    for app in GEOMEAN_APPS:
        eve1 = by_key[(app, "O3+EVE-1")]
        assert eve1["total"] == 1.0
        # Buckets account for (almost) all cycles.
        assert sum(eve1[b] for b in BREAKDOWN_BUCKETS) > 0.95

    # backprop: memory-path stalls (fetch or transpose of the strided
    # stream) dominate at every factor (paper Section VII-B).
    for n in (1, 4, 8, 32):
        row = by_key[("backprop", f"O3+EVE-{n}")]
        mem = (row["ld_mem_stall"] + row["st_mem_stall"] + row["vmu_stall"]
               + row["ld_dt_stall"] + row["st_dt_stall"])
        assert mem > row["busy"]

    # Figure 7's headline: busy fraction falls from EVE-1 to the balanced
    # factor, then rises again (row under-utilization + slower clock).
    busy = {n: by_key[("backprop", f"O3+EVE-{n}")]["busy"]
            for n in (1, 4, 32)}
    assert busy[4] < busy[1]
    assert busy[4] < busy[32]

    # EVE-1 spends more of its time busy than EVE-8 on the compute-heavy
    # jacobi (bit-serial ALU latency), in absolute normalised terms.
    assert by_key[("jacobi-2d", "O3+EVE-1")]["busy"] > \
        by_key[("jacobi-2d", "O3+EVE-8")]["busy"]

    # EVE-32 needs no data transpose.
    for app in GEOMEAN_APPS:
        row = by_key[(app, "O3+EVE-32")]
        assert row["ld_dt_stall"] == 0.0
        assert row["st_dt_stall"] == 0.0
