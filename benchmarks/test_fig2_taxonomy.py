"""Figure 2 — latency & throughput of add/logic and multiply vs the
parallelization factor (256x256 S-CIM SRAM, 32 vector registers).

Paper shape: latency falls monotonically (sub-linearly, due to control
overhead); throughput peaks at the balanced-utilization factor n = 4 and
falls on both sides (column under-utilization below, row under-utilization
above).
"""

import pytest

from repro.experiments import format_table
from repro.experiments.figures import figure2

from conftest import show


def test_figure2_measured(benchmark):
    rows = benchmark(figure2, measured=True)
    show("Figure 2 (measured from micro-programs)", format_table(
        ["factor", "alus", "add_lat", "mul_lat", "add_tput", "mul_tput"],
        [[r["factor"], r["alus"], r["add_latency_rel"], r["mul_latency_rel"],
          r["add_throughput_rel"], r["mul_throughput_rel"]] for r in rows]))
    tput = {r["factor"]: r["add_throughput_rel"] for r in rows}
    latency = {r["factor"]: r["add_latency_rel"] for r in rows}
    assert max(tput, key=tput.get) == 4  # the paper's headline insight
    assert latency[32] < latency[16] < latency[8] < latency[4] < latency[1]


def test_figure2_analytical_model(benchmark):
    rows = benchmark(figure2, measured=False)
    show("Figure 2 (closed-form model)", format_table(
        ["factor", "alus", "add_lat", "mul_lat", "add_tput", "mul_tput"],
        [[r["factor"], r["alus"], r["add_latency_rel"], r["mul_latency_rel"],
          r["add_throughput_rel"], r["mul_throughput_rel"]] for r in rows]))
    measured = figure2(measured=True)
    for model_row, measured_row in zip(rows, measured):
        assert model_row["mul_latency_rel"] == pytest.approx(
            measured_row["mul_latency_rel"], rel=0.2)
