#!/usr/bin/env python
"""The "ephemeral" part of EVE: spawn / teardown cost (Section V-E).

Warms a private L2 with scalar traffic of varying dirtiness, then
way-partitions it to spawn the vector engine.  The spawn cost is linear in
the resident lines of the carved-out ways (dirty lines pay an extra
write-back to the LLC); tearing the engine back down is free.
"""

import numpy as np

from repro import format_table, make_system
from repro.mem import CacheArray, spawn_cost, teardown_cost


def warm_l2(l2: CacheArray, fraction: float, store_ratio: float,
            seed: int = 7) -> None:
    """Touch enough distinct lines to fill ``fraction`` of the cache."""
    rng = np.random.default_rng(seed)
    n_lines = int(l2.config.lines * fraction)
    # Random line addresses, as real traffic would leave them: sets fill
    # unevenly, so the carved-out (upper) ways hold lines even at partial
    # occupancy.
    addrs = rng.integers(0, l2.config.lines * 8, n_lines) * l2.line_bytes
    for addr in addrs:
        is_store = rng.random() < store_ratio
        if not l2.lookup(int(addr), is_store):
            l2.fill(int(addr), dirty=is_store)


def main() -> None:
    rows = []
    for fraction in (0.0, 0.25, 0.5, 1.0):
        for store_ratio in (0.0, 0.3, 1.0):
            l2 = CacheArray(make_system("O3").l2)
            warm_l2(l2, fraction, store_ratio)
            cost = spawn_cost(l2)
            rows.append([
                f"{fraction:.0%}", f"{store_ratio:.0%}",
                cost.lines_walked, cost.dirty_lines, cost.cycles,
            ])
    print("EVE spawn cost vs resident L2 state:")
    print(format_table(
        ["warm", "stores", "lines_walked", "dirty", "spawn_cycles"], rows))

    down = teardown_cost()
    print(f"\nteardown cost: {down.cycles} cycles (ways simply return to "
          "the cache, lines invalid)")


if __name__ == "__main__":
    main()
