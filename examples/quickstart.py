#!/usr/bin/env python
"""Quickstart: simulate one workload on the paper's systems.

Runs the memory-bound ``vvadd`` kernel on the in-order and out-of-order
scalar baselines, the integrated and decoupled vector units, and three EVE
designs, then prints wall-clock speedups and EVE-8's execution breakdown
(the Figure 7 buckets).
"""

from repro import ExperimentRunner, format_table

SYSTEMS = ["IO", "O3", "O3+IV", "O3+DV", "O3+EVE-1", "O3+EVE-8", "O3+EVE-32"]


def main() -> None:
    runner = ExperimentRunner()

    rows = []
    for system in SYSTEMS:
        result = runner.run(system, "vvadd")
        rows.append([
            system,
            result.cycles,
            result.time_ns / 1e3,
            runner.speedup(system, "vvadd", baseline="IO"),
        ])
    print("vvadd (65,536 elements):")
    print(format_table(["system", "cycles", "time_us", "speedup_vs_IO"], rows))

    result = runner.run("O3+EVE-8", "vvadd")
    print("\nEVE-8 execution breakdown (fraction of cycles):")
    breakdown = result.breakdown.normalised_to(result.cycles)
    print(format_table(
        ["bucket", "fraction"],
        [[bucket, value] for bucket, value in breakdown.items() if value > 0]))


if __name__ == "__main__":
    main()
