#!/usr/bin/env python
"""Explore the bit-hybrid design space for a target workload mix.

Sweeps the parallelization factor n over {1, 2, 4, 8, 16, 32} and reports,
for each EVE-n design: macro-operation latencies from the real
micro-programs, in-situ ALU counts from the register layout, the Section
VI area/cycle-time overheads, and the simulated performance on a
compute-heavy kernel (jacobi-2d at a reduced size) — the Section II
taxonomy argument, end to end, on live models.
"""

from repro import EVE_FACTORS, ExperimentRunner, format_table
from repro.circuits_model import AreaModel, cycle_time_ns
from repro.sram import RegisterLayout
from repro.uops import MacroOpRom


def main() -> None:
    print("Micro-program latencies and layout (256x256 array, 32 vregs):")
    rows = []
    for n in EVE_FACTORS:
        rom = MacroOpRom(n)
        layout = RegisterLayout(rows=256, cols=256, element_bits=32,
                                factor=n, num_vregs=32)
        rows.append([
            f"EVE-{n}",
            layout.elements_per_array,
            rom.cycles("add"),
            rom.cycles("mul"),
            rom.cycles("shift_scalar", op="sll", amount=5),
            cycle_time_ns(n),
            AreaModel(n).l2_overhead,
        ])
    print(format_table(
        ["design", "ALUs/array", "add_cyc", "mul_cyc", "sll5_cyc",
         "cycle_ns", "L2_area_ovh"], rows))

    print("\nSimulated performance on jacobi-2d (reduced 128x128 grid):")
    runner = ExperimentRunner(params_override={"jacobi-2d": {"n": 128, "iters": 4}})
    rows = []
    for n in EVE_FACTORS:
        system = f"O3+EVE-{n}"
        speedup = runner.speedup(system, "jacobi-2d", baseline="IO")
        area = AreaModel(n).system_factor
        rows.append([system, speedup, area, speedup / area])
    print(format_table(
        ["system", "speedup_vs_IO", "area_factor", "perf_per_area"], rows))
    best = max(rows, key=lambda r: r[3])
    print(f"\nBest perf-per-area design point: {best[0]}")


if __name__ == "__main__":
    main()
