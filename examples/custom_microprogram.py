#!/usr/bin/env python
"""Write your own EVE micro-program in the Table II listing syntax.

Assembles a hand-written micro-program computing the *absolute difference*
``vd = |vs1 - vs2|`` — a macro-operation the ROM does not ship — runs it
bit-exactly on the EVE SRAM, and cross-checks against numpy.

The program composes the paper's primitives directly: a complement-and-add
subtraction, a sign mask walked out of the XRegister's MSB column, and a
masked conditional negation (complement + add-one via a zeroed scratch row
lent by the ``vm`` slot).
"""

import numpy as np

from repro.sram import EveSram, RegisterLayout
from repro.uops import Binding, MicroEngine, assemble, disassemble

#: |vs1 - vs2| at parallelization factor 4 (8 segments per element).
#: vm is a scratch register (zeroed first) used for the +1 of the
#: conditional negation.
ABSDIFF = """
; vd = |vs1 - vs2|                (factor 4, 32-bit elements)
; -- vd = vs1 + ~vs2 + 1, carry = (vs1 >= vs2) -------------------------
    init seg1, 8
c1:
    decr seg1 | blc vs2[seg1], vs2[seg1] | -
    -         | wb vs2[seg1], nand       | bnz seg1, c1
    - | wb carry, data_in <ones | -
    init seg0, 8
sub:
    decr seg0 | blc vs1[seg0], vs2[seg0] | -
    -         | wb vd[seg0], add         | bnz seg0, sub
    init seg1, 8
c2:
    decr seg1 | blc vs2[seg1], vs2[seg1] | -
    -         | wb vs2[seg1], nand       | bnz seg1, c2
; -- where the difference is negative: negate vd -----------------------
; (sign bit -> XRegister -> mask latch, the MSB walk path)
    - | blc vd[7], vd[7] | -
    - | wb xreg, and     | -
    - | mask_shftl       | -
    init seg2, 8
neg:
    decr seg2 | blc vd[seg2], vd[seg2]   | -
    -         | wb vd[seg2], nand masked | bnz seg2, neg
; vm is zeroed scratch: vd += 0 + 1, masked (completes the negation)
    init seg3, 8
z:
    decr seg3 | wr vm[seg3] <zeros       | bnz seg3, z
    - | wb carry, data_in <ones | -
    init seg0, 8
inc:
    decr seg0 | blc vd[seg0], vm[seg0]   | -
    -         | wb vd[seg0], add masked  | bnz seg0, inc
    ret
"""


def main() -> None:
    program = assemble(ABSDIFF, name="absdiff/4")
    print(disassemble(program))

    layout = RegisterLayout(rows=256, cols=64, element_bits=32, factor=4,
                            num_vregs=8)
    sram = EveSram(256, 64, 4)
    rng = np.random.default_rng(42)
    n = layout.elements_per_array
    a = rng.integers(-2 ** 30, 2 ** 30, n)
    b = rng.integers(-2 ** 30, 2 ** 30, n)
    sram.write_vreg(layout, 1, a)
    sram.write_vreg(layout, 2, b)

    binding = Binding(layout=layout, regs={"vs1": 1, "vs2": 2, "vd": 3, "vm": 4})
    cycles = MicroEngine().run(program, sram, binding)

    got = sram.read_vreg(layout, 3)
    want = np.abs(a - b)
    assert np.array_equal(got, want), (got[:4], want[:4])
    print(f"\n|a - b| over {n} elements: bit-exact in {cycles} cycles "
          f"({cycles / n:.1f} cycles/element at this array width)")


if __name__ == "__main__":
    main()
