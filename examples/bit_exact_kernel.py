#!/usr/bin/env python
"""Run a kernel bit-exactly through the EVE SRAM micro-programs.

The same Smith-Waterman kernel source runs on two execution contexts:

* the functional :class:`~repro.isa.intrinsics.VectorContext` (numpy), and
* the :class:`~repro.core.functional.EveFunctionalEngine`, where every
  arithmetic instruction executes its real micro-program on the bit-level
  compute-SRAM model — the sense amplifiers, Manchester carry chains,
  XRegisters, and shifters all toggle for real.

Their outputs must agree bit for bit, which is the correctness story
behind the paper's function/timing split.
"""

from repro.core import EveFunctionalEngine
from repro.isa import VectorContext
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("sw")
    params = dict(workload.tiny_params)

    # Functional run (numpy).
    inputs = workload.make_inputs(params)
    ctx = VectorContext(vlmax=32, name="sw")
    functional = workload.kernel(ctx, inputs, params)

    # Bit-exact run on an EVE-8 SRAM pool with capacity for 32 elements.
    engine = EveFunctionalEngine(factor=8, capacity=32)
    bit_exact = workload.run_bit_exact(engine, params)

    reference = workload.reference(workload.make_inputs(params), params)
    print(f"numpy score      : {int(functional['score'][0])}")
    print(f"bit-exact score  : {int(bit_exact['score'][0])}")
    print(f"reference score  : {int(reference['score'][0])}")
    assert int(bit_exact["score"][0]) == int(reference["score"][0])
    print(f"\nSRAM micro-op cycles spent: {engine.cycles}")
    print("bit-exact execution matches the numpy reference — the EVE "
          "circuits compute the same answer, bit for bit.")


if __name__ == "__main__":
    main()
